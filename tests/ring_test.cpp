// RingView: successor/predecessor/absorber arithmetic under crashes.
#include <gtest/gtest.h>

#include "core/ring.h"

namespace hts::core {
namespace {

TEST(RingView, FullRingNeighbours) {
  RingView r(5);
  EXPECT_EQ(r.alive_count(), 5u);
  EXPECT_EQ(r.successor(0), 1u);
  EXPECT_EQ(r.successor(4), 0u);  // wraps
  EXPECT_EQ(r.predecessor(0), 4u);
  EXPECT_EQ(r.predecessor(3), 2u);
}

TEST(RingView, SuccessorSkipsCrashed) {
  RingView r(5);
  EXPECT_TRUE(r.mark_crashed(1));
  EXPECT_TRUE(r.mark_crashed(2));
  EXPECT_EQ(r.successor(0), 3u);
  EXPECT_EQ(r.predecessor(3), 0u);
  EXPECT_EQ(r.alive_count(), 3u);
}

TEST(RingView, MarkCrashedIdempotent) {
  RingView r(3);
  EXPECT_TRUE(r.mark_crashed(1));
  EXPECT_FALSE(r.mark_crashed(1));
  EXPECT_EQ(r.alive_count(), 2u);
}

TEST(RingView, SoloRing) {
  RingView r(4);
  r.mark_crashed(0);
  r.mark_crashed(2);
  r.mark_crashed(3);
  EXPECT_EQ(r.alive_count(), 1u);
  EXPECT_EQ(r.successor(1), 1u);
  EXPECT_EQ(r.predecessor(1), 1u);
}

TEST(RingView, AbsorberIsSelfWhileAlive) {
  RingView r(4);
  for (ProcessId p = 0; p < 4; ++p) EXPECT_EQ(r.absorber(p), p);
}

TEST(RingView, AbsorberOfDeadIsClosestAlivePredecessor) {
  RingView r(5);
  r.mark_crashed(2);
  EXPECT_EQ(r.absorber(2), 1u);
  r.mark_crashed(1);
  EXPECT_EQ(r.absorber(2), 0u);  // predecessor chain walks past dead 1
  EXPECT_EQ(r.absorber(1), 0u);
  r.mark_crashed(0);
  // Only 3 and 4 left; the closest alive predecessor of 2 wraps to 4.
  EXPECT_EQ(r.absorber(2), 4u);
}

TEST(RingView, AliveMembersSorted) {
  RingView r(6);
  r.mark_crashed(0);
  r.mark_crashed(3);
  const auto m = r.alive_members();
  ASSERT_EQ(m.size(), 4u);
  EXPECT_EQ(m, (std::vector<ProcessId>{1, 2, 4, 5}));
}

TEST(RingView, PredecessorOfDeadNodeWorks) {
  RingView r(4);
  r.mark_crashed(3);
  // predecessor(3) must still answer (used for surrogate computation).
  EXPECT_EQ(r.predecessor(3), 2u);
  EXPECT_EQ(r.successor(2), 0u);
}

}  // namespace
}  // namespace hts::core
