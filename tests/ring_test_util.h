// Shared in-process ring drivers for RingServer unit tests: a reply-recording
// ServerContext and a mini-ring that delivers every producible ring message
// until quiescence (dead servers swallow anything sent to them, crash-stop).
// Used by server_unit_test.cpp and multiobject_test.cpp — keep the crash and
// settle semantics here so the suites cannot drift apart.
#pragma once

#include <memory>
#include <vector>

#include "core/messages.h"
#include "core/server.h"

namespace hts::core::test {

struct MockCtx final : ServerContext {
  struct Reply {
    ClientId client;
    net::PayloadPtr msg;
  };
  std::vector<Reply> replies;

  void send_client(ClientId client, net::PayloadPtr msg) override {
    replies.push_back(Reply{client, std::move(msg)});
  }

  [[nodiscard]] int acks_for(ClientId c, RequestId r) const {
    int n = 0;
    for (const auto& rep : replies) {
      if (rep.client == c && rep.msg->kind() == kClientWriteAck &&
          static_cast<const ClientWriteAck&>(*rep.msg).req == r) {
        ++n;
      }
    }
    return n;
  }

  [[nodiscard]] const ClientReadAck* last_read_ack(ClientId c) const {
    const ClientReadAck* found = nullptr;
    for (const auto& rep : replies) {
      if (rep.client == c && rep.msg->kind() == kClientReadAck) {
        found = &static_cast<const ClientReadAck&>(*rep.msg);
      }
    }
    return found;
  }
};

/// Mini-ring: delivers every producible ring message until quiescence.
/// Dead servers swallow anything sent to them (crash-stop).
class MiniRing {
 public:
  explicit MiniRing(std::size_t n, ServerOptions opts = {}) {
    for (ProcessId p = 0; p < n; ++p) {
      servers_.push_back(std::make_unique<RingServer>(p, n, opts));
      dead_.push_back(false);
    }
  }

  RingServer& at(ProcessId p) { return *servers_[p]; }
  MockCtx& ctx() { return ctx_; }

  void crash(ProcessId p) {
    dead_[p] = true;
    for (ProcessId q = 0; q < servers_.size(); ++q) {
      if (!dead_[q]) servers_[q]->on_peer_crash(p, ctx_);
    }
  }

  /// One egress step from server p: send its next ring message (if any).
  bool step(ProcessId p) {
    if (dead_[p]) return false;
    auto send = servers_[p]->next_ring_send();
    if (!send) return false;
    if (!dead_[send->to]) {
      servers_[send->to]->on_ring_message(std::move(send->msg), ctx_);
    }
    return true;
  }

  /// Runs until no server can make progress.
  void settle() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (ProcessId p = 0; p < servers_.size(); ++p) {
        while (step(p)) progress = true;
      }
    }
  }

 private:
  std::vector<std::unique_ptr<RingServer>> servers_;
  std::vector<bool> dead_;
  MockCtx ctx_;
};

}  // namespace hts::core::test
