// Round-model tests: the paper's §4 analytical numbers must fall out of the
// real state machines exactly — read latency 2 rounds, write latency 2N+2,
// saturated write throughput ~1/round, read throughput ~n/round — and the
// Figure 1 toy comparison (quorum vs local reads).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "round/round_model.h"

namespace hts::round {
namespace {

// ------------------------------------------------------------ Fig.1 toys

struct ToyClient {
  std::unique_ptr<ClientNode> node;
  int node_index = -1;
  int server_node = 0;
  std::uint64_t completed = 0;
  std::uint64_t issue_round = 0;
  std::uint64_t last_latency = 0;
};

struct ToyCluster {
  Engine engine;
  std::vector<std::unique_ptr<Node>> servers;
  std::vector<std::unique_ptr<ToyClient>> clients;

  template <typename ServerT, typename... Args>
  void add_servers(int n, Args... args) {
    for (int i = 0; i < n; ++i) {
      if constexpr (sizeof...(Args) > 0) {
        servers.push_back(std::make_unique<ServerT>(i, args...));
      } else {
        servers.push_back(std::make_unique<ServerT>());
      }
      engine.add_node(servers.back().get());
    }
  }

  void add_client(int server_node) {
    auto c = std::make_unique<ToyClient>();
    ToyClient* raw = c.get();
    raw->server_node = server_node;
    auto issue = [raw, engine = &engine](Api& api) {
      raw->issue_round = engine->round();
      api.send_ring(raw->server_node,
                    net::make_payload<ToyRead>(api.self()));
    };
    auto reply = [raw, engine = &engine](net::PayloadPtr, Api&) {
      ++raw->completed;
      raw->last_latency = engine->round() - raw->issue_round;
      raw->node->request_issue();
    };
    c->node = std::make_unique<ClientNode>(std::move(issue), std::move(reply));
    c->node_index = engine.add_node(c->node.get());
    clients.push_back(std::move(c));
  }
};

TEST(Fig1, AlgorithmALatencyIsFourRounds) {
  ToyCluster t;
  t.add_servers<AlgoAServer>(3, 3);
  t.add_client(0);
  t.engine.run_rounds(6);
  EXPECT_EQ(t.clients[0]->completed, 1u);
  EXPECT_EQ(t.clients[0]->last_latency, 4u);
}

TEST(Fig1, AlgorithmBLatencyIsTwoRounds) {
  // The figure draws B with the same latency as A; under the model's hop
  // counting a local read is one round trip (see EXPERIMENTS.md note).
  ToyCluster t;
  t.add_servers<AlgoBServer>(3);
  t.add_client(1);
  t.engine.run_rounds(4);
  EXPECT_EQ(t.clients[0]->completed, 1u);
  EXPECT_EQ(t.clients[0]->last_latency, 2u);
}

TEST(Fig1, AlgorithmAThroughputIsOnePerRound) {
  ToyCluster t;
  t.add_servers<AlgoAServer>(3, 3);
  // Saturate: several clients per server.
  for (int s = 0; s < 3; ++s) {
    for (int k = 0; k < 4; ++k) t.add_client(s);
  }
  const std::uint64_t warmup = 50, measure = 300;
  t.engine.run_rounds(warmup);
  std::uint64_t before = 0;
  for (auto& c : t.clients) before += c->completed;
  t.engine.run_rounds(measure);
  std::uint64_t after = 0;
  for (auto& c : t.clients) after += c->completed;
  const double thpt =
      static_cast<double>(after - before) / static_cast<double>(measure);
  // Paper: 3 requests every 3 rounds → 1 op/round.
  EXPECT_NEAR(thpt, 1.0, 0.1);
}

TEST(Fig1, AlgorithmBThroughputIsNPerRound) {
  ToyCluster t;
  t.add_servers<AlgoBServer>(3);
  for (int s = 0; s < 3; ++s) {
    for (int k = 0; k < 4; ++k) t.add_client(s);
  }
  const std::uint64_t warmup = 50, measure = 300;
  t.engine.run_rounds(warmup);
  std::uint64_t before = 0;
  for (auto& c : t.clients) before += c->completed;
  t.engine.run_rounds(measure);
  std::uint64_t after = 0;
  for (auto& c : t.clients) after += c->completed;
  const double thpt =
      static_cast<double>(after - before) / static_cast<double>(measure);
  // Paper: 3 read operations per round (n = 3).
  EXPECT_NEAR(thpt, 3.0, 0.2);
}

// ------------------------------------------------- ring algorithm, §4.1

class RingLatency : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RingLatency, WriteIsTwoNPlusTwoRounds) {
  const std::size_t n = GetParam();
  auto cluster = RingRoundCluster::build(n, 0, 1, 0);
  cluster->engine.run_rounds(3 * n + 8);
  const auto& stats = cluster->clients[0]->stats;
  ASSERT_GE(stats.completed_writes, 1u);
  // §4.1: "The latency of a write operation is equal to 2N + 2 rounds."
  EXPECT_EQ(static_cast<std::size_t>(stats.last_latency_rounds), 2 * n + 2);
}

TEST_P(RingLatency, ReadIsTwoRounds) {
  const std::size_t n = GetParam();
  auto cluster = RingRoundCluster::build(n, 1, 0, 0);
  cluster->engine.run_rounds(4);
  const auto& stats = cluster->clients[0]->stats;
  ASSERT_GE(stats.completed_reads, 1u);
  // §4.1: "The read latency of our algorithm is equal to 2 rounds."
  EXPECT_EQ(static_cast<std::size_t>(stats.last_latency_rounds), 2u);
}

INSTANTIATE_TEST_SUITE_P(N, RingLatency, ::testing::Values(2, 3, 5, 8));

// ---------------------------------------------- ring algorithm, §4.2

TEST(RingThroughput, WritesSustainOnePerRound) {
  // §4.2: with ≥1 new write request per round, 1 write completes per round
  // on average (pre-writes carry the pipeline; commits piggyback).
  const std::size_t n = 4;
  auto cluster = RingRoundCluster::build(n, 0, 3, 0);
  const std::uint64_t warmup = 100, measure = 500;
  cluster->engine.run_rounds(warmup);
  std::uint64_t before = 0;
  for (auto& c : cluster->clients) before += c->stats.completed_writes;
  cluster->engine.run_rounds(measure);
  std::uint64_t after = 0;
  for (auto& c : cluster->clients) after += c->stats.completed_writes;
  const double thpt =
      static_cast<double>(after - before) / static_cast<double>(measure);
  EXPECT_GT(thpt, 0.8);
  EXPECT_LT(thpt, 1.3);
}

class RingReadScaling : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RingReadScaling, ReadsScaleLinearly) {
  // §4.2: "the read throughput is equal to n".
  const std::size_t n = GetParam();
  auto cluster = RingRoundCluster::build(n, 3, 0, 0);
  const std::uint64_t warmup = 50, measure = 400;
  cluster->engine.run_rounds(warmup);
  std::uint64_t before = 0;
  for (auto& c : cluster->clients) before += c->stats.completed_reads;
  cluster->engine.run_rounds(measure);
  std::uint64_t after = 0;
  for (auto& c : cluster->clients) after += c->stats.completed_reads;
  const double thpt =
      static_cast<double>(after - before) / static_cast<double>(measure);
  EXPECT_NEAR(thpt, static_cast<double>(n), 0.15 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(N, RingReadScaling, ::testing::Values(2, 4, 8));

TEST(RingThroughput, MixedLoadKeepsBothRates) {
  // §4.2's contention analysis: writes still ~1/round, reads still ~n/round.
  // A parked read waits up to lmax (the bounded write latency), so reaching
  // one read per round per server needs ~lmax readers in flight — the
  // paper's "infinite number of read requests" assumption; 10 closed-loop
  // readers per server approximates it.
  const std::size_t n = 4;
  auto cluster = RingRoundCluster::build(n, 10, 2, 0);
  const std::uint64_t warmup = 150, measure = 600;
  cluster->engine.run_rounds(warmup);
  std::uint64_t r_before = 0, w_before = 0;
  for (auto& c : cluster->clients) {
    r_before += c->stats.completed_reads;
    w_before += c->stats.completed_writes;
  }
  cluster->engine.run_rounds(measure);
  std::uint64_t r_after = 0, w_after = 0;
  for (auto& c : cluster->clients) {
    r_after += c->stats.completed_reads;
    w_after += c->stats.completed_writes;
  }
  const double w_thpt =
      static_cast<double>(w_after - w_before) / static_cast<double>(measure);
  const double r_thpt =
      static_cast<double>(r_after - r_before) / static_cast<double>(measure);
  EXPECT_GT(w_thpt, 0.6);   // writes keep flowing under read load
  EXPECT_GT(r_thpt, 0.7 * static_cast<double>(n));  // reads stay ~linear
}

TEST(RoundEngine, BacklogObservable) {
  // Sanity of the engine's queueing semantics: two messages to one node in
  // one round leave one queued.
  struct Sink final : Node {
    int got = 0;
    void on_ring(net::PayloadPtr, Api&) override { ++got; }
  };
  struct Source final : Node {
    int target = 0;
    void end_of_round(Api& api) override {
      if (api.round() == 0) {
        api.send_ring(target, net::make_payload<ToyReadAck>());
        api.send_ring(target, net::make_payload<ToyReadAck>());
      }
    }
  };
  Engine e;
  Sink sink;
  Source src;
  const int sink_idx = e.add_node(&sink);
  src.target = sink_idx;
  e.add_node(&src);
  e.run_round();  // source emits two
  e.run_round();  // sink consumes one
  EXPECT_EQ(sink.got, 1);
  EXPECT_EQ(e.ring_backlog(sink_idx), 1u);
  e.run_round();
  EXPECT_EQ(sink.got, 2);
}

}  // namespace
}  // namespace hts::round
