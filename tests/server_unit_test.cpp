// RingServer driven directly (no fabric): exact message flows of the paper's
// pseudo-code, plus the recovery behaviours (crash re-send, orphan adoption,
// retry dedup) that make the resilience claim hold.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/messages.h"
#include "core/server.h"
#include "ring_test_util.h"

namespace hts::core {
namespace {

using test::MiniRing;
using test::MockCtx;

TEST(RingServerUnit, WriteCompletesAroundTheRing) {
  MiniRing ring(3);
  ring.at(0).on_client_write(/*client=*/7, /*req=*/1, Value::synthetic(1, 64),
                             ring.ctx());
  ring.settle();
  EXPECT_EQ(ring.ctx().acks_for(7, 1), 1);
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(ring.at(p).current_tag(), (Tag{1, 0})) << "server " << p;
    EXPECT_EQ(ring.at(p).current_value(), Value::synthetic(1, 64));
    EXPECT_TRUE(ring.at(p).pending().empty());
  }
  // Exactly one pre-write was initiated; no server still queues traffic.
  EXPECT_EQ(ring.at(0).stats().pre_writes_initiated, 1u);
  EXPECT_FALSE(ring.at(0).has_ring_traffic());
}

TEST(RingServerUnit, ReadImmediateWithoutPending) {
  MiniRing ring(3);
  ring.at(1).on_client_read(9, 1, ring.ctx());
  const auto* ack = ring.ctx().last_read_ack(9);
  ASSERT_NE(ack, nullptr);
  EXPECT_TRUE(ack->value.empty());  // initial value
  EXPECT_EQ(ack->tag, kInitialTag);
  EXPECT_EQ(ring.at(1).stats().reads_immediate, 1u);
}

TEST(RingServerUnit, ReadParksDuringPreWriteAndUnparksOnCommit) {
  MiniRing ring(3);
  ring.at(0).on_client_write(7, 1, Value::synthetic(1, 64), ring.ctx());
  // Step the pre-write to s1, and s1's forward to s2 (s1 now has it pending).
  ASSERT_TRUE(ring.step(0));
  ASSERT_TRUE(ring.step(1));
  EXPECT_TRUE(ring.at(1).pending().contains(Tag{1, 0}));

  ring.at(1).on_client_read(9, 1, ring.ctx());
  EXPECT_EQ(ring.ctx().last_read_ack(9), nullptr);  // parked
  EXPECT_EQ(ring.at(1).parked_read_count(), 1u);
  EXPECT_EQ(ring.at(1).stats().reads_parked, 1u);

  ring.settle();  // commit circulates
  const auto* ack = ring.ctx().last_read_ack(9);
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->value, Value::synthetic(1, 64));
  EXPECT_EQ(ack->tag, (Tag{1, 0}));
  EXPECT_EQ(ring.at(1).parked_read_count(), 0u);
}

TEST(RingServerUnit, ReadBeforeForwardingSeesOldValueImmediately) {
  // A pre-write sitting in the forward queue is not yet pending (line 71
  // semantics): the value cannot have been committed anywhere, so a local
  // read may return the old value immediately.
  MiniRing ring(3);
  ring.at(0).on_client_write(7, 1, Value::synthetic(1, 64), ring.ctx());
  ASSERT_TRUE(ring.step(0));  // pre-write delivered to s1, not yet forwarded
  EXPECT_FALSE(ring.at(1).pending().contains(Tag{1, 0}));
  ring.at(1).on_client_read(9, 1, ring.ctx());
  const auto* ack = ring.ctx().last_read_ack(9);
  ASSERT_NE(ack, nullptr);
  EXPECT_TRUE(ack->value.empty());
  ring.settle();
}

TEST(RingServerUnit, TagsSkipPastPendingTimestamps) {
  MiniRing ring(2, ServerOptions{});
  // Feed s1 a pre-write with a high timestamp from s0, then let s1 initiate:
  // its tag must exceed the pending one (line 22–23).
  ring.at(1).on_ring_message(
      net::make_payload<PreWrite>(Tag{41, 0}, Value::synthetic(5, 16), 1, 1),
      ring.ctx());
  ASSERT_TRUE(ring.step(1));  // forward → now pending at s1
  ring.at(1).on_client_write(8, 1, Value::synthetic(6, 16), ring.ctx());
  auto send = ring.at(1).next_ring_send();
  ASSERT_TRUE(send.has_value());
  ASSERT_EQ(send->msg->kind(), kPreWrite);
  const auto& pw = static_cast<const PreWrite&>(*send->msg);
  EXPECT_EQ(pw.tag, (Tag{42, 1}));
}

TEST(RingServerUnit, SoloServerServesDirectly) {
  MiniRing ring(1);
  ring.at(0).on_client_write(3, 1, Value::synthetic(2, 32), ring.ctx());
  EXPECT_EQ(ring.ctx().acks_for(3, 1), 1);
  EXPECT_EQ(ring.at(0).current_tag(), (Tag{1, 0}));
  ring.at(0).on_client_read(4, 1, ring.ctx());
  const auto* ack = ring.ctx().last_read_ack(4);
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->value, Value::synthetic(2, 32));
  EXPECT_FALSE(ring.at(0).has_ring_traffic());
}

TEST(RingServerUnit, RetriedWriteIsDeduplicated) {
  MiniRing ring(3);
  ring.at(0).on_client_write(7, 1, Value::synthetic(1, 64), ring.ctx());
  ring.settle();
  ASSERT_EQ(ring.ctx().acks_for(7, 1), 1);

  // The client times out (say the first ack was slow) and retries the same
  // request at another server: it must be acked WITHOUT a new ring write.
  const auto initiated_before = ring.at(2).stats().pre_writes_initiated;
  ring.at(2).on_client_write(7, 1, Value::synthetic(1, 64), ring.ctx());
  ring.settle();
  EXPECT_EQ(ring.ctx().acks_for(7, 1), 2);  // acked again, harmless
  EXPECT_EQ(ring.at(2).stats().pre_writes_initiated, initiated_before);
  EXPECT_EQ(ring.at(2).stats().dedup_acks, 1u);
}

TEST(RingServerUnit, CrashOfSuccessorResendsPending) {
  MiniRing ring(3);
  ring.at(0).on_client_write(7, 1, Value::synthetic(1, 64), ring.ctx());
  ASSERT_TRUE(ring.step(0));  // pre-write at s1
  ASSERT_TRUE(ring.step(1));  // s1 forwarded to s2; s1 has it pending
  // s2 crashes holding the pre-write.
  ring.crash(2);
  ring.settle();
  // s1 re-sent its pending pre-write to its new successor s0; the write
  // completed on the 2-ring.
  EXPECT_EQ(ring.ctx().acks_for(7, 1), 1);
  EXPECT_EQ(ring.at(0).current_value(), Value::synthetic(1, 64));
  EXPECT_EQ(ring.at(1).current_value(), Value::synthetic(1, 64));
  EXPECT_TRUE(ring.at(0).pending().empty());
  EXPECT_TRUE(ring.at(1).pending().empty());
}

TEST(RingServerUnit, OrphanedPreWriteAdoptionFullScenario) {
  MiniRing ring(3);
  ring.at(0).on_client_write(7, 1, Value::synthetic(1, 64), ring.ctx());
  ASSERT_TRUE(ring.step(0));  // pre-write delivered to s1
  ASSERT_TRUE(ring.step(1));  // s1 forwards to s2; pending at s1
  // s2 received the pre-write but has not forwarded; origin s0 crashes. The
  // in-flight pre-write must still commit, else parked reads hang forever.
  ring.crash(0);
  // Park a read at s1 on the orphaned tag.
  // (pending at s1 contains {1,0} — the read must wait, then complete.)
  ring.at(1).on_client_read(9, 1, ring.ctx());
  EXPECT_EQ(ring.at(1).parked_read_count(), 1u);
  ring.settle();
  EXPECT_EQ(ring.at(1).parked_read_count(), 0u);
  const auto* ack = ring.ctx().last_read_ack(9);
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->value, Value::synthetic(1, 64));
  EXPECT_TRUE(ring.at(1).pending().empty());
  EXPECT_TRUE(ring.at(2).pending().empty());
  EXPECT_EQ(ring.at(1).current_value(), Value::synthetic(1, 64));
  EXPECT_EQ(ring.at(2).current_value(), Value::synthetic(1, 64));
  // The surrogate (s2, predecessor of dead s0) did the adoption.
  EXPECT_GE(ring.at(2).stats().adoptions, 1u);
}

TEST(RingServerUnit, CollapseToSoloResolvesEverything) {
  MiniRing ring(3);
  ring.at(0).on_client_write(7, 1, Value::synthetic(1, 64), ring.ctx());
  ASSERT_TRUE(ring.step(0));  // s1 received pre-write
  ASSERT_TRUE(ring.step(1));  // s1 forwarded → pending at s1
  ring.at(1).on_client_read(9, 1, ring.ctx());  // parks at s1
  EXPECT_EQ(ring.at(1).parked_read_count(), 1u);
  // Everyone else dies; s1 is alone and must resolve locally.
  ring.crash(2);
  ring.crash(0);
  EXPECT_EQ(ring.at(1).parked_read_count(), 0u);
  const auto* ack = ring.ctx().last_read_ack(9);
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->value, Value::synthetic(1, 64));
  // Solo writes now complete immediately.
  ring.at(1).on_client_write(8, 1, Value::synthetic(2, 64), ring.ctx());
  EXPECT_EQ(ring.ctx().acks_for(8, 1), 1);
}

TEST(RingServerUnit, ReadFastpathOptionServesDominatedPending) {
  ServerOptions opts;
  opts.read_fastpath = true;
  MiniRing ring(3, opts);
  // Complete writes {1,0} and {2,0}, then inject a slow pre-write from s2
  // that still carries timestamp 1 (s2 assigned it before learning of s0's
  // writes): pending = {1,2} < applied {2,0}.
  ring.at(0).on_client_write(7, 1, Value::synthetic(1, 64), ring.ctx());
  ring.settle();
  ring.at(0).on_client_write(7, 2, Value::synthetic(2, 64), ring.ctx());
  ring.settle();
  ASSERT_EQ(ring.at(1).current_tag(), (Tag{2, 0}));
  ring.at(1).on_ring_message(
      net::make_payload<PreWrite>(Tag{1, 2}, Value::synthetic(9, 16), 2, 1),
      ring.ctx());
  ASSERT_TRUE(ring.step(1));  // forwarded → pending at s1, tag {1,2} < {2,0}
  ASSERT_TRUE(ring.at(1).pending().contains(Tag{1, 2}));
  ring.at(1).on_client_read(9, 1, ring.ctx());
  // Fast path: applied tag {2,0} >= max pending {1,2} → immediate answer.
  const auto* ack = ring.ctx().last_read_ack(9);
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->tag, (Tag{2, 0}));
  ring.settle();
}

TEST(RingServerUnit, ConcurrentWritesOrderedByTag) {
  MiniRing ring(3);
  ring.at(0).on_client_write(7, 1, Value::synthetic(1, 64), ring.ctx());
  ring.at(1).on_client_write(8, 1, Value::synthetic(2, 64), ring.ctx());
  ring.at(2).on_client_write(9, 1, Value::synthetic(3, 64), ring.ctx());
  ring.settle();
  EXPECT_EQ(ring.ctx().acks_for(7, 1), 1);
  EXPECT_EQ(ring.ctx().acks_for(8, 1), 1);
  EXPECT_EQ(ring.ctx().acks_for(9, 1), 1);
  // All servers converge on the same (maximal) tag and value.
  const Tag t = ring.at(0).current_tag();
  const Value v = ring.at(0).current_value();
  for (ProcessId p = 1; p < 3; ++p) {
    EXPECT_EQ(ring.at(p).current_tag(), t);
    EXPECT_EQ(ring.at(p).current_value(), v);
    EXPECT_TRUE(ring.at(p).pending().empty());
  }
}

TEST(RingServerUnit, CommitOvertakingPreWriteIsHandled) {
  // Non-FIFO defensive path: a commit arrives before its pre-write.
  MiniRing ring(3);
  const Tag t{5, 0};
  ring.at(1).on_ring_message(net::make_payload<WriteCommit>(t, 7, 1),
                             ring.ctx());
  // No pending entry: the commit is remembered, not applied.
  EXPECT_EQ(ring.at(1).current_tag(), kInitialTag);
  ring.at(1).on_ring_message(
      net::make_payload<PreWrite>(t, Value::synthetic(1, 64), 7, 1),
      ring.ctx());
  EXPECT_EQ(ring.at(1).current_tag(), t);
  EXPECT_EQ(ring.at(1).current_value(), Value::synthetic(1, 64));
  EXPECT_FALSE(ring.at(1).pending().contains(t));  // must not re-park readers
  ring.at(1).on_client_read(9, 1, ring.ctx());
  ASSERT_NE(ring.ctx().last_read_ack(9), nullptr);
}

}  // namespace
}  // namespace hts::core
