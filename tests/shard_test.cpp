// Sharded multi-ring topology, end to end: ShardMap determinism and balance,
// ShardRouter single-ring pinning (bit-for-bit the pre-sharding client),
// per-ring traffic metrics, multi-ring linearizability with the serving-ring
// tags, independent per-shard crash recovery, and the cross-ring checker.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/messages.h"
#include "core/topology.h"
#include "harness/sim_cluster.h"
#include "harness/threaded_cluster.h"
#include "harness/workload.h"
#include "lincheck/checker.h"
#include "sim/simulator.h"

namespace hts::core {
namespace {

// ------------------------------------------------------------- shard map

TEST(ShardMap, DeterministicAcrossInstances) {
  // Routing is a pure function of (n_rings, object): two independently
  // constructed maps — "two client restarts" — agree on every object.
  const ShardMap a(4), b(4);
  for (ObjectId obj = 0; obj < 10'000; ++obj) {
    ASSERT_EQ(a.ring_of(obj), b.ring_of(obj)) << "object " << obj;
  }
}

TEST(ShardMap, SingleRingPinsEverythingToRingZero) {
  const ShardMap m(1);
  for (ObjectId obj = 0; obj < 1'000; ++obj) {
    ASSERT_EQ(m.ring_of(obj), kDefaultRing);
  }
  ASSERT_EQ(m.ring_of(~0ull), kDefaultRing);
}

TEST(ShardMap, SpreadsObjectsAcrossAllRings) {
  const std::size_t n_rings = 4;
  const ShardMap m(n_rings);
  std::vector<std::size_t> count(n_rings, 0);
  const std::size_t n = 20'000;
  for (ObjectId obj = 0; obj < n; ++obj) ++count[m.ring_of(obj)];
  for (std::size_t r = 0; r < n_rings; ++r) {
    // Consistent hashing with 64 points per ring: expect every ring within
    // a loose band around the fair share (1/4 ± a lot).
    EXPECT_GT(count[r], n / 10) << "ring " << r << " starved";
    EXPECT_LT(count[r], n / 2) << "ring " << r << " overloaded";
  }
}

TEST(ShardMap, GrowingTheRingCountOnlyMovesObjectsToTheNewRing) {
  // Consistent-hash property: rings 0..R-1 keep their points when ring R is
  // added, so an object either stays put or moves to the new ring — never
  // between old rings. Bounded churn: roughly 1/(R+1) of the namespace.
  const ShardMap before(3), after(4);
  const std::size_t n = 20'000;
  std::size_t moved = 0;
  for (ObjectId obj = 0; obj < n; ++obj) {
    const RingId old_ring = before.ring_of(obj);
    const RingId new_ring = after.ring_of(obj);
    if (old_ring != new_ring) {
      ++moved;
      ASSERT_EQ(new_ring, 3u) << "object " << obj
                              << " moved between pre-existing rings";
    }
  }
  EXPECT_GT(moved, 0u);           // the new ring takes a share...
  EXPECT_LT(moved, n / 2);        // ...but most of the namespace stays put
}

// ------------------------------------------------------------- topology

TEST(Topology, GlobalLocalAddressingRoundTrips) {
  const Topology t{3, 5};
  EXPECT_EQ(t.total_servers(), 15u);
  for (ProcessId g = 0; g < t.total_servers(); ++g) {
    const RingId r = t.ring_of_server(g);
    const ProcessId local = t.local_id(g);
    EXPECT_LT(r, 3u);
    EXPECT_LT(local, 5u);
    EXPECT_EQ(t.global_id(r, local), g);
    EXPECT_EQ(t.ring_base(r) + local, g);
  }
}

TEST(ShardRouter, SingleRingRotationMatchesTheLegacyClient) {
  // The pre-sharding client rotated (target + 1) % n_servers with one sticky
  // target; the router on Topology::single must be indistinguishable.
  ShardRouter router(Topology::single(3), /*preferred=*/1);
  EXPECT_EQ(router.ring_of(kDefaultObject), kDefaultRing);
  EXPECT_EQ(router.ring_of(42), kDefaultRing);
  EXPECT_EQ(router.target_of(kDefaultRing), 1u);
  EXPECT_EQ(router.rotate(kDefaultRing, 1), 2u);
  EXPECT_EQ(router.rotate(kDefaultRing, 2), 0u);
  EXPECT_EQ(router.target_of(kDefaultRing), 0u);
}

TEST(ShardRouter, StickyTargetsAreIndependentPerRing) {
  const Topology topo{2, 3};
  ShardRouter router(topo, /*preferred=*/1);
  // Both rings start at local index 1 (the preferred server's local id).
  EXPECT_EQ(router.target_of(0), topo.global_id(0, 1));
  EXPECT_EQ(router.target_of(1), topo.global_id(1, 1));
  // Rotating ring 1 must not disturb ring 0's sticky target.
  const ProcessId rotated = router.rotate(1, router.target_of(1));
  EXPECT_EQ(rotated, topo.global_id(1, 2));
  EXPECT_EQ(router.target_of(1), topo.global_id(1, 2));
  EXPECT_EQ(router.target_of(0), topo.global_id(0, 1));
  // Rotation wraps within the ring's block, never into another ring.
  EXPECT_EQ(router.rotate(1, router.target_of(1)), topo.global_id(1, 0));
}

// ------------------------------------------- R = 1 golden wire-frame pin

namespace {

/// Captures everything a session hands its fabric, as wire bytes.
struct RecordingCtx final : ClientContext {
  struct Sent {
    ProcessId to;
    std::string bytes;
  };
  std::vector<Sent> sent;
  std::vector<std::pair<double, std::uint64_t>> timers;
  double clock = 0;

  void send_server(ProcessId server, net::PayloadPtr msg) override {
    sent.push_back({server, encode_message(*msg)});
  }
  void arm_timer(double delay, std::uint64_t token) override {
    timers.emplace_back(delay, token);
  }
  [[nodiscard]] double now() const override { return clock; }
};

/// Issues the same op/timeout sequence through `session`.
void drive(ClientSession& session, RecordingCtx& ctx) {
  session.begin_write(Value::synthetic(1, 64), ctx);      // default object
  session.begin_read(ctx);                                // queued behind it
  session.begin_write(7, Value::synthetic(2, 64), ctx);   // explicit object
  // Time out the first write twice: rotation + re-send, the sticky target.
  const auto timer0 = ctx.timers.at(0).second;
  ctx.clock = 0.25;
  session.on_timer(timer0, ctx);
  session.on_timer(ctx.timers.back().second, ctx);
}

}  // namespace

TEST(ShardGolden, SingleRingTopologySessionIsBitForBitTheLegacySession) {
  // One session built the pre-sharding way (n_servers only), one through an
  // explicit Topology::single — every emitted frame, target and timer must
  // be identical. This is the "pinned single-ring mode" guarantee.
  ClientOptions legacy;
  legacy.n_servers = 3;
  legacy.preferred_server = 1;
  legacy.max_inflight = 2;
  ClientOptions topo = legacy;
  topo.topology = Topology::single(3);

  ClientSession a(/*id=*/9, legacy), b(/*id=*/9, topo);
  RecordingCtx ca, cb;
  drive(a, ca);
  drive(b, cb);

  ASSERT_EQ(ca.sent.size(), cb.sent.size());
  for (std::size_t i = 0; i < ca.sent.size(); ++i) {
    EXPECT_EQ(ca.sent[i].to, cb.sent[i].to) << "send " << i;
    EXPECT_EQ(ca.sent[i].bytes, cb.sent[i].bytes) << "send " << i;
  }
  EXPECT_EQ(ca.timers, cb.timers);
}

TEST(ShardGolden, SingleRingSessionEmitsTheSeedFrameLayout) {
  // Golden pin against the hand-built seed layout (kind u8, reserved 0 u8,
  // client u64, req u64, payload): a topology-constructed session must put
  // exactly these bytes on the wire for default-object traffic.
  ClientOptions opts;
  opts.n_servers = 3;
  opts.preferred_server = 0;
  opts.topology = Topology::single(3);
  opts.max_inflight = 2;
  ClientSession session(/*id=*/1234, opts);
  RecordingCtx ctx;
  const Value v = Value::synthetic(9, 100);
  session.begin_write(Value(v), ctx);
  // Complete the write (one op per object) so the read goes out too.
  session.on_reply(ClientWriteAck(1), /*from=*/0, ctx);
  session.begin_read(ctx);

  ASSERT_EQ(ctx.sent.size(), 2u);
  {
    Encoder e;
    e.u8(kClientWrite);
    e.u8(0);  // version 0: no object field — the seed protocol
    e.u64(1234);
    e.u64(1);  // first write request id
    e.value(v);
    EXPECT_EQ(ctx.sent[0].bytes, std::move(e).result());
  }
  {
    Encoder e;
    e.u8(kClientRead);
    e.u8(0);
    e.u64(1234);
    e.u64(kReadRequestBit | 1);  // first read id, flagged space
    EXPECT_EQ(ctx.sent[1].bytes, std::move(e).result());
  }
}

}  // namespace
}  // namespace hts::core

namespace hts::harness {
namespace {

// --------------------------------------------- single-ring cluster parity

TEST(ShardSim, SingleRingTopologyClusterReproducesTheLegacyRunExactly) {
  // The simulator is deterministic: the same workload on (a) the legacy
  // n_servers config and (b) an explicit Topology::single must produce the
  // same wire history — message and byte totals on both networks — and the
  // same final register states. Any divergence means the sharding layer
  // leaked into single-ring behaviour.
  auto run = [](bool explicit_topology) {
    sim::Simulator sim;
    SimClusterConfig cfg;
    cfg.n_servers = 3;
    if (explicit_topology) cfg.topology = core::Topology::single(3);
    SimCluster cluster(sim, cfg);
    UniqueValueSource values;
    std::vector<std::unique_ptr<ClosedLoopDriver>> drivers;
    for (ProcessId s = 0; s < 3; ++s) {
      const auto m = cluster.add_client_machine();
      cluster.add_client(m, s);
      const ClientId id = static_cast<ClientId>(cluster.client_count() - 1);
      WorkloadConfig wl;
      wl.write_fraction = 0.5;
      wl.value_size = 512;
      wl.stop_at = 0.1;
      wl.measure_from = 0;
      wl.measure_until = 0.1;
      wl.seed = 7 + s;
      wl.n_objects = 4;
      drivers.push_back(std::make_unique<ClosedLoopDriver>(
          sim, cluster.port(id), id, wl, values, nullptr));
    }
    for (auto& d : drivers) d->start();
    sim.run_to_quiescence();
    struct Snapshot {
      std::uint64_t server_msgs, server_bytes, client_msgs, client_bytes;
      std::vector<std::string> tags;
    } s;
    s.server_msgs = cluster.server_network().total_messages_sent();
    s.server_bytes = cluster.server_network().total_bytes_sent();
    s.client_msgs = cluster.client_network().total_messages_sent();
    s.client_bytes = cluster.client_network().total_bytes_sent();
    for (ProcessId p = 0; p < 3; ++p) {
      for (ObjectId obj = 0; obj < 4; ++obj) {
        s.tags.push_back(cluster.server(p).current_tag(obj).to_string());
      }
    }
    return std::make_tuple(s.server_msgs, s.server_bytes, s.client_msgs,
                           s.client_bytes, s.tags);
  };
  EXPECT_EQ(run(false), run(true));
}

// ------------------------------------------------------- multi-ring runs

lincheck::History run_sharded_sim(sim::Simulator& sim, SimCluster& cluster,
                                  std::uint64_t seed, std::size_t n_objects,
                                  std::size_t pipeline) {
  const core::Topology& topo = cluster.topology();
  lincheck::History history;
  UniqueValueSource values;
  std::vector<std::unique_ptr<ClosedLoopDriver>> drivers;
  for (std::size_t c = 0; c < topo.total_servers(); ++c) {
    const auto m = cluster.add_client_machine();
    cluster.add_client(m, static_cast<ProcessId>(c));
    const ClientId id = static_cast<ClientId>(cluster.client_count() - 1);
    WorkloadConfig wl;
    wl.write_fraction = 0.6;
    wl.value_size = 512;
    wl.stop_at = 0.15;
    wl.measure_from = 0;
    wl.measure_until = 0.15;
    wl.seed = seed + c;
    wl.n_objects = n_objects;
    wl.pipeline = pipeline;
    drivers.push_back(std::make_unique<ClosedLoopDriver>(
        sim, cluster.port(id), id, wl, values, &history));
  }
  for (auto& d : drivers) d->start();
  sim.run_to_quiescence();
  for (auto& d : drivers) d->finalize();
  return history;
}

TEST(ShardSim, MultiRingHistoriesAreLinearizableAndRingConsistent) {
  const core::Topology topo{2, 3};
  sim::Simulator sim;
  SimClusterConfig cfg;
  cfg.topology = topo;
  cfg.client_max_inflight = 4;
  cfg.client_retry_timeout_s = 0.05;
  SimCluster cluster(sim, cfg);
  auto h = run_sharded_sim(sim, cluster, 11, /*n_objects=*/8,
                           /*pipeline=*/4);
  ASSERT_GT(h.size(), 100u);

  auto verdict = lincheck::check_register(h);
  EXPECT_TRUE(verdict.linearizable) << verdict.explanation;
  EXPECT_TRUE(lincheck::check_tag_order(h).linearizable);
  EXPECT_TRUE(lincheck::check_ring_assignment(h).linearizable);

  // Every op was served by the ring the shard map assigns its object — and
  // the workload genuinely exercised both rings.
  const core::ShardMap map(topo.n_rings());
  std::set<RingId> rings_used;
  for (const auto& op : h.ops()) {
    ASSERT_NE(op.ring, kNoRing) << op.describe();
    EXPECT_EQ(op.ring, map.ring_of(op.object)) << op.describe();
    rings_used.insert(op.ring);
  }
  EXPECT_EQ(rings_used.size(), 2u) << "objects must span both rings";

  // Per-ring traffic: both shards moved wire bytes, and the per-ring
  // counters decompose the network totals exactly (the server network
  // carries only ring traffic when networks are separate).
  const auto per_ring = cluster.traffic_per_ring();
  ASSERT_EQ(per_ring.size(), 2u);
  RingTraffic total = total_traffic(per_ring);
  EXPECT_GT(per_ring[0].transmissions, 0u);
  EXPECT_GT(per_ring[1].transmissions, 0u);
  EXPECT_EQ(total.transmissions,
            cluster.server_network().total_messages_sent());
  EXPECT_EQ(total.bytes, cluster.server_network().total_bytes_sent());
}

TEST(ShardSim, CrashInOneRingLeavesOtherShardsUndisturbed) {
  const core::Topology topo{2, 3};
  sim::Simulator sim;
  SimClusterConfig cfg;
  cfg.topology = topo;
  cfg.client_max_inflight = 4;
  cfg.client_retry_timeout_s = 0.05;
  SimCluster cluster(sim, cfg);
  lincheck::History history;
  UniqueValueSource values;
  std::vector<std::unique_ptr<ClosedLoopDriver>> drivers;
  for (std::size_t c = 0; c < topo.total_servers(); ++c) {
    const auto m = cluster.add_client_machine();
    cluster.add_client(m, static_cast<ProcessId>(c));
    const ClientId id = static_cast<ClientId>(cluster.client_count() - 1);
    WorkloadConfig wl;
    wl.write_fraction = 0.6;
    wl.value_size = 512;
    wl.stop_at = 0.2;
    wl.measure_from = 0;
    wl.measure_until = 0.2;
    wl.seed = 31 + c;
    wl.n_objects = 8;
    wl.pipeline = 4;
    drivers.push_back(std::make_unique<ClosedLoopDriver>(
        sim, cluster.port(id), id, wl, values, &history));
  }
  // Crash server 1 of ring 0 (global id 1) mid-run.
  cluster.schedule_crash(0.05, 1);
  for (auto& d : drivers) d->start();
  sim.run_to_quiescence();
  for (auto& d : drivers) d->finalize();

  ASSERT_GT(history.size(), 50u);
  auto verdict = lincheck::check_register(history);
  EXPECT_TRUE(verdict.linearizable) << verdict.explanation;
  // Ring 0 lost a server and repaired; ring 1 must never have noticed: its
  // servers saw three peers throughout.
  EXPECT_FALSE(cluster.server_up(1));
  for (ProcessId local = 0; local < 3; ++local) {
    const ProcessId g = topo.global_id(1, local);
    EXPECT_TRUE(cluster.server_up(g));
    EXPECT_EQ(cluster.server(g).ring().alive_count(), 3u);
    EXPECT_EQ(cluster.server(g).stats().syncs_sent, 0u)
        << "ring 1 server " << local << " ran crash repair";
  }
  // Every op completed despite the crash.
  for (const auto& op : history.ops()) {
    EXPECT_FALSE(op.pending()) << op.describe();
  }
}

TEST(ShardChecker, CrossRingHistoryIsRejected) {
  // One object, two serving rings: per-ring views are each perfectly
  // linearizable (each ring saw a private copy), which is exactly why the
  // checker must reject on the ring tags alone.
  lincheck::History h;
  h.record_write(/*c=*/1, /*value=*/10, 0.0, 1.0, /*object=*/5, /*ring=*/0);
  h.record_read(/*c=*/2, /*value=*/lincheck::kInitialValueId, 2.0, 3.0,
                kInitialTag, /*object=*/5, /*ring=*/1);
  auto verdict = lincheck::check_register(h);
  ASSERT_FALSE(verdict.linearizable);
  EXPECT_NE(verdict.explanation.find("two rings"), std::string::npos)
      << verdict.explanation;
  EXPECT_FALSE(lincheck::check_register_brute(h).linearizable);
  EXPECT_FALSE(lincheck::check_ring_assignment(h).linearizable);

  // The same reads/writes on one ring pass (the merged history is fine:
  // the read saw the initial value before... no — read follows the write,
  // so the single-ring version must FAIL linearizability instead, proving
  // the cross-ring rejection fired for the right reason).
  lincheck::History same_ring;
  same_ring.record_write(1, 10, 0.0, 1.0, 5, 0);
  same_ring.record_read(2, lincheck::kInitialValueId, 2.0, 3.0, kInitialTag,
                        5, 0);
  auto v2 = lincheck::check_register(same_ring);
  ASSERT_FALSE(v2.linearizable);
  EXPECT_EQ(v2.explanation.find("two rings"), std::string::npos)
      << "single-ring failure must be a linearizability witness, not a "
         "ring-assignment one: "
      << v2.explanation;
}

TEST(ShardThreaded, MultiRingClusterServesAndSurvivesAShardCrash) {
  const core::Topology topo{2, 3};
  ThreadedClusterConfig cfg;
  cfg.topology = topo;
  cfg.client_retry_timeout_s = 0.05;
  cfg.client_max_inflight = 8;
  ThreadedCluster cluster(cfg);
  auto& alice = cluster.add_client(0);                      // ring 0 preferred
  auto& bob = cluster.add_client(topo.global_id(1, 0));     // ring 1 preferred
  cluster.start();

  // Writes across enough objects to hit both rings.
  const core::ShardMap map(topo.n_rings());
  std::set<RingId> rings_hit;
  std::vector<std::future<core::OpResult>> acks;
  for (ObjectId obj = 1; obj <= 12; ++obj) {
    rings_hit.insert(map.ring_of(obj));
    acks.push_back(alice.async_write(obj, Value::synthetic(obj, 128)));
  }
  ASSERT_EQ(rings_hit.size(), 2u) << "objects 1..12 must span both rings";
  for (auto& a : acks) (void)a.get();

  // Crash one server of ring 1, then keep writing everywhere: ring 0 is
  // untouched, ring 1 repairs and keeps serving.
  cluster.crash_server(topo.global_id(1, 1));
  acks.clear();
  for (ObjectId obj = 1; obj <= 12; ++obj) {
    acks.push_back(alice.async_write(obj, Value::synthetic(100 + obj, 128)));
  }
  for (auto& a : acks) (void)a.get();

  for (ObjectId obj = 1; obj <= 12; ++obj) {
    auto r = bob.read_result(obj);
    EXPECT_EQ(r.value, Value::synthetic(100 + obj, 128)) << "object " << obj;
    EXPECT_EQ(r.ring, map.ring_of(obj)) << "object " << obj;
    EXPECT_EQ(cluster.topology().ring_of_server(r.served_by), r.ring)
        << "reply must come from the object's ring";
  }

  ASSERT_TRUE(cluster.wait_quiescent(5.0));
  auto h = cluster.history();
  auto verdict = lincheck::check_register(h);
  EXPECT_TRUE(verdict.linearizable) << verdict.explanation;
  EXPECT_TRUE(lincheck::check_ring_assignment(h).linearizable);

  // Per-ring traffic is tracked on the threaded fabric too.
  const auto per_ring = cluster.traffic_per_ring();
  ASSERT_EQ(per_ring.size(), 2u);
  EXPECT_GT(per_ring[0].transmissions, 0u);
  EXPECT_GT(per_ring[1].transmissions, 0u);
  EXPECT_GT(per_ring[0].ring_messages, 0u);
  EXPECT_GT(per_ring[1].ring_messages, 0u);
}

}  // namespace
}  // namespace hts::harness
