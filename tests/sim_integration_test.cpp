// End-to-end integration on the deterministic simulator: full clusters,
// concurrent clients, crash schedules — every recorded history must be
// linearizable, every issued operation must complete (resilience).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/sim_cluster.h"
#include "harness/workload.h"
#include "lincheck/checker.h"

namespace hts::harness {
namespace {

struct Fixture {
  sim::Simulator sim;
  std::unique_ptr<SimCluster> cluster;
  lincheck::History history;
  UniqueValueSource values;
  std::vector<std::unique_ptr<ClosedLoopDriver>> drivers;

  explicit Fixture(SimClusterConfig cfg) {
    cluster = std::make_unique<SimCluster>(sim, cfg);
  }

  /// One machine per driver; each driver runs one logical client.
  void add_driver(ProcessId server, WorkloadConfig wl) {
    const std::size_t m = cluster->add_client_machine();
    auto& client = cluster->add_client(m, server);
    (void)client;
    const ClientId id = static_cast<ClientId>(cluster->client_count() - 1);
    drivers.push_back(std::make_unique<ClosedLoopDriver>(
        sim, cluster->port(id), id, wl, values, &history));
  }

  void run(double until) {
    for (auto& d : drivers) d->start();
    sim.run_until(until);
    // Let in-flight operations finish (issue loop stops at stop_at).
    sim.run_to_quiescence();
    for (auto& d : drivers) d->finalize();
  }
};

WorkloadConfig writer_wl(double stop, std::uint64_t seed) {
  WorkloadConfig wl;
  wl.write_fraction = 1.0;
  wl.value_size = 2048;
  wl.stop_at = stop;
  wl.measure_from = 0;
  wl.measure_until = stop;
  wl.seed = seed;
  return wl;
}

WorkloadConfig reader_wl(double stop, std::uint64_t seed) {
  WorkloadConfig wl = writer_wl(stop, seed);
  wl.write_fraction = 0.0;
  return wl;
}

WorkloadConfig mixed_wl(double stop, double wf, std::uint64_t seed) {
  WorkloadConfig wl = writer_wl(stop, seed);
  wl.write_fraction = wf;
  return wl;
}

TEST(SimIntegration, SingleWriterSingleReaderLinearizable) {
  SimClusterConfig cfg;
  cfg.n_servers = 3;
  Fixture f(cfg);
  f.add_driver(0, writer_wl(0.5, 1));
  f.add_driver(1, reader_wl(0.5, 2));
  f.run(0.5);
  EXPECT_GT(f.history.size(), 20u);
  auto res = lincheck::check_register(f.history);
  EXPECT_TRUE(res.linearizable) << res.explanation;
  EXPECT_TRUE(lincheck::check_tag_order(f.history).linearizable);
}

TEST(SimIntegration, ManyClientsAllServersLinearizable) {
  SimClusterConfig cfg;
  cfg.n_servers = 5;
  Fixture f(cfg);
  for (ProcessId s = 0; s < 5; ++s) {
    f.add_driver(s, mixed_wl(0.4, 0.3, 100 + s));
    f.add_driver(s, mixed_wl(0.4, 0.7, 200 + s));
  }
  f.run(0.4);
  EXPECT_GT(f.history.size(), 100u);
  auto res = lincheck::check_register(f.history);
  EXPECT_TRUE(res.linearizable) << res.explanation;
  EXPECT_TRUE(lincheck::check_tag_order(f.history).linearizable);
}

TEST(SimIntegration, AllIssuedOpsCompleteFailureFree) {
  SimClusterConfig cfg;
  cfg.n_servers = 4;
  Fixture f(cfg);
  for (ProcessId s = 0; s < 4; ++s) f.add_driver(s, mixed_wl(0.3, 0.5, s + 1));
  f.run(0.3);
  std::uint64_t issued = 0;
  for (auto& d : f.drivers) issued += d->ops_issued();
  // Every issued op must appear completed in the history (none pending).
  std::size_t completed = 0;
  for (const auto& op : f.history.ops()) {
    if (!op.pending()) ++completed;
  }
  EXPECT_EQ(completed, issued);
}

TEST(SimIntegration, ReadsNeverTouchTheRing) {
  SimClusterConfig cfg;
  cfg.n_servers = 4;
  Fixture f(cfg);
  for (ProcessId s = 0; s < 4; ++s) f.add_driver(s, reader_wl(0.2, s + 1));
  f.run(0.2);
  EXPECT_GT(f.history.size(), 50u);
  EXPECT_EQ(f.cluster->server_network().total_messages_sent(), 0u);
}

TEST(SimIntegration, CrashOneServerMidTrafficStaysLinearizable) {
  SimClusterConfig cfg;
  cfg.n_servers = 4;
  Fixture f(cfg);
  for (ProcessId s = 0; s < 4; ++s) {
    f.add_driver(s, mixed_wl(0.5, 0.4, 300 + s));
  }
  f.cluster->schedule_crash(0.1, 2);
  f.run(0.5);
  auto res = lincheck::check_register(f.history);
  EXPECT_TRUE(res.linearizable) << res.explanation;
  // Clients survive: every non-pending op completed, and progress continued
  // well past the crash.
  double last_completion = 0;
  for (const auto& op : f.history.ops()) {
    if (!op.pending()) last_completion = std::max(last_completion, op.responded_at);
  }
  EXPECT_GT(last_completion, 0.4);
}

TEST(SimIntegration, CascadeToSingleServerStaysLive) {
  SimClusterConfig cfg;
  cfg.n_servers = 4;
  cfg.client_retry_timeout_s = 0.05;
  Fixture f(cfg);
  for (ProcessId s = 0; s < 4; ++s) {
    f.add_driver(s, mixed_wl(0.8, 0.5, 400 + s));
  }
  // Kill 3 of 4 servers; the paper's resilience claim: n-1 crashes tolerated.
  f.cluster->schedule_crash(0.10, 1);
  f.cluster->schedule_crash(0.25, 2);
  f.cluster->schedule_crash(0.40, 3);
  f.run(0.8);
  auto res = lincheck::check_register(f.history);
  EXPECT_TRUE(res.linearizable) << res.explanation;
  // The survivor keeps serving: completions must exist after the last crash.
  double last_completion = 0;
  std::size_t completed_after = 0;
  for (const auto& op : f.history.ops()) {
    if (!op.pending()) {
      last_completion = std::max(last_completion, op.responded_at);
      if (op.responded_at > 0.45) ++completed_after;
    }
  }
  EXPECT_GT(completed_after, 10u);
  EXPECT_TRUE(lincheck::check_tag_order(f.history).linearizable);
}

TEST(SimIntegration, SharedNetworkModeWorks) {
  SimClusterConfig cfg;
  cfg.n_servers = 3;
  cfg.shared_network = true;
  Fixture f(cfg);
  f.add_driver(0, writer_wl(0.3, 7));
  f.add_driver(1, reader_wl(0.3, 8));
  f.run(0.3);
  EXPECT_GT(f.history.size(), 10u);
  auto res = lincheck::check_register(f.history);
  EXPECT_TRUE(res.linearizable) << res.explanation;
}

// Property sweep: random mixed workloads with random crash schedules; every
// seed must produce a linearizable history and keep completing operations.
class SimCrashProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimCrashProperty, LinearizableUnderRandomCrashes) {
  Rng rng(GetParam());
  SimClusterConfig cfg;
  cfg.n_servers = 3 + rng.below(3);  // 3..5
  cfg.client_retry_timeout_s = 0.05;
  Fixture f(cfg);
  const double horizon = 0.6;
  for (ProcessId s = 0; s < cfg.n_servers; ++s) {
    f.add_driver(s, mixed_wl(horizon, 0.2 + rng.unit() * 0.6,
                             GetParam() * 97 + s));
  }
  // Crash up to n-1 random distinct servers at random times.
  const std::size_t crashes = rng.below(cfg.n_servers);  // 0..n-1
  std::vector<ProcessId> victims;
  for (ProcessId p = 0; p < cfg.n_servers; ++p) victims.push_back(p);
  for (std::size_t i = 0; i < crashes; ++i) {
    const std::size_t pick = i + rng.below(victims.size() - i);
    std::swap(victims[i], victims[pick]);
    f.cluster->schedule_crash(0.05 + rng.unit() * 0.4, victims[i]);
  }
  f.run(horizon);
  auto res = lincheck::check_register(f.history);
  EXPECT_TRUE(res.linearizable)
      << "seed=" << GetParam() << ": " << res.explanation;
  auto tags = lincheck::check_tag_order(f.history);
  EXPECT_TRUE(tags.linearizable) << "seed=" << GetParam() << ": "
                                 << tags.explanation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimCrashProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace hts::harness
