// Discrete-event simulator and network-model unit tests: deterministic event
// ordering, serialization math, full-duplex behaviour, fan-in queuing.
#include <gtest/gtest.h>

#include <vector>

#include "core/messages.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace hts::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.run_to_quiescence();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&, i] { order.push_back(i); });
  }
  sim.run_to_quiescence();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, NestedSchedulingWorks) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule(0.5, [&] { times.push_back(sim.now()); });
  });
  sim.run_to_quiescence();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.run_to_quiescence();
  double fired_at = -1;
  sim.schedule_at(0.5, [&] { fired_at = sim.now(); });  // in the "past"
  sim.run_to_quiescence();
  EXPECT_DOUBLE_EQ(fired_at, 1.0);
}

// ------------------------------------------------------------------ network

net::PayloadPtr payload_of(std::size_t bytes) {
  // SyncState's wire size = 2 + 12 + 4 + len; choose len for exact control.
  return net::make_payload<core::SyncState>(
      Tag{1, 0}, Value::synthetic(1, bytes - 18));
}

TEST(NetConfig, WireBytesAddFrameOverhead) {
  NetConfig cfg;
  cfg.frame_payload = 1000;
  cfg.frame_overhead = 50;
  EXPECT_EQ(cfg.wire_bytes(1), 1u + 50u);
  EXPECT_EQ(cfg.wire_bytes(1000), 1050u);
  EXPECT_EQ(cfg.wire_bytes(1001), 1001u + 100u);  // two frames
  EXPECT_EQ(cfg.wire_bytes(0), 50u);              // control frame
}

TEST(Network, SingleMessageLatency) {
  Simulator sim;
  NetConfig cfg;
  cfg.bandwidth_bps = 100e6;
  cfg.latency_s = 50e-6;
  cfg.per_message_cpu_s = 0;
  Network net(sim, cfg);

  double delivered_at = -1;
  NicId a = net.add_nic("a", [](net::PayloadPtr) {});
  NicId b = net.add_nic("b", [&](net::PayloadPtr) { delivered_at = sim.now(); });

  auto msg = payload_of(10'000);
  const double ser = cfg.wire_time(msg->wire_size());
  net.send(a, b, msg);
  sim.run_to_quiescence();
  EXPECT_NEAR(delivered_at, ser + cfg.latency_s, 1e-12);
}

TEST(Network, SenderSerializesBackToBack) {
  Simulator sim;
  NetConfig cfg;
  cfg.per_message_cpu_s = 0;
  Network net(sim, cfg);
  std::vector<double> deliveries;
  NicId a = net.add_nic("a", [](net::PayloadPtr) {});
  NicId b = net.add_nic("b", [&](net::PayloadPtr) { deliveries.push_back(sim.now()); });

  auto msg = payload_of(10'000);
  const double ser = cfg.wire_time(msg->wire_size());
  net.send(a, b, msg);
  net.send(a, b, msg);
  net.send(a, b, msg);
  sim.run_to_quiescence();
  ASSERT_EQ(deliveries.size(), 3u);
  // Pipeline: one serialization apart.
  EXPECT_NEAR(deliveries[1] - deliveries[0], ser, 1e-12);
  EXPECT_NEAR(deliveries[2] - deliveries[1], ser, 1e-12);
}

TEST(Network, FanInQueuesAtReceiver) {
  Simulator sim;
  NetConfig cfg;
  cfg.per_message_cpu_s = 0;
  Network net(sim, cfg);
  std::vector<double> deliveries;
  NicId a = net.add_nic("a", [](net::PayloadPtr) {});
  NicId b = net.add_nic("b", [](net::PayloadPtr) {});
  NicId c = net.add_nic("c", [&](net::PayloadPtr) { deliveries.push_back(sim.now()); });

  auto msg = payload_of(10'000);
  const double ser = cfg.wire_time(msg->wire_size());
  // Two senders transmit simultaneously to one receiver: the receiver's
  // link serializes them (switch egress queue).
  net.send(a, c, msg);
  net.send(b, c, msg);
  sim.run_to_quiescence();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_NEAR(deliveries[1] - deliveries[0], ser, 1e-12);
}

TEST(Network, FullDuplexTxRxIndependent) {
  Simulator sim;
  NetConfig cfg;
  cfg.per_message_cpu_s = 0;
  Network net(sim, cfg);
  std::vector<double> at_a, at_b;
  NicId a = net.add_nic("a", [&](net::PayloadPtr) { at_a.push_back(sim.now()); });
  NicId b = net.add_nic("b", [&](net::PayloadPtr) { at_b.push_back(sim.now()); });

  auto msg = payload_of(10'000);
  const double one_way = cfg.wire_time(msg->wire_size()) + cfg.latency_s;
  net.send(a, b, msg);
  net.send(b, a, msg);  // opposite direction at the same instant
  sim.run_to_quiescence();
  ASSERT_EQ(at_a.size(), 1u);
  ASSERT_EQ(at_b.size(), 1u);
  // Full duplex: both directions complete in one one-way time.
  EXPECT_NEAR(at_a[0], one_way, 1e-12);
  EXPECT_NEAR(at_b[0], one_way, 1e-12);
}

TEST(Network, DisabledNicDropsTraffic) {
  Simulator sim;
  Network net(sim, NetConfig{});
  int got = 0;
  NicId a = net.add_nic("a", [](net::PayloadPtr) {});
  NicId b = net.add_nic("b", [&](net::PayloadPtr) { ++got; });
  net.send(a, b, payload_of(100));
  net.disable(b);
  net.send(a, b, payload_of(100));
  sim.run_to_quiescence();
  EXPECT_EQ(got, 0);  // first message was in flight when b died → dropped too
  EXPECT_FALSE(net.is_up(b));

  net.disable(a);
  net.send(a, b, payload_of(100));
  EXPECT_EQ(net.total_messages_sent(), 2u);  // the third send was ignored
}

TEST(Network, PerMessageCpuDelaysDelivery) {
  Simulator sim;
  NetConfig cfg;
  cfg.per_message_cpu_s = 100e-6;
  Network net(sim, cfg);
  double delivered = -1;
  NicId a = net.add_nic("a", [](net::PayloadPtr) {});
  NicId b = net.add_nic("b", [&](net::PayloadPtr) { delivered = sim.now(); });
  auto msg = payload_of(1000);
  net.send(a, b, msg);
  sim.run_to_quiescence();
  EXPECT_NEAR(delivered,
              100e-6 + cfg.wire_time(msg->wire_size()) + cfg.latency_s, 1e-12);
}

}  // namespace
}  // namespace hts::sim
