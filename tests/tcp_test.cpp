// TcpTransport over real loopback sockets: golden frame pin against the
// wire codec, FIFO delivery, crash detection from TCP breaks, timers,
// quiescence — then the full protocol stack over sockets (ThreadedCluster
// tcp mode with crash + repair) and the multi-process deployment
// (ProcCluster: SIGKILL a server process, survivors detect and repair).
//
// This binary has a custom main: when re-exec'd as a ProcCluster server
// child it runs the server loop instead of the test suite, so it links
// GTest::gtest (not gtest_main).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/messages.h"
#include "harness/proc_cluster.h"
#include "harness/threaded_cluster.h"
#include "lincheck/checker.h"
#include "net/tcp_transport.h"

namespace hts::net {
namespace {

PayloadPtr ping(RequestId r) { return make_payload<core::ClientWriteAck>(r); }

RequestId req_of(const Payload& p) {
  return static_cast<const core::ClientWriteAck&>(p).req;
}

/// Transport wired to the real message codec, ephemeral loopback ports.
TcpTransport::Options core_options(double detection_delay_s,
                                   std::vector<ProcessId> servers) {
  TcpTransport::Options o;
  o.detection_delay_s = detection_delay_s;
  o.base_port = 0;
  o.servers = std::move(servers);
  o.encode = [](const Payload& m, FrameWriter& w) {
    core::encode_message_into(m, w);
  };
  o.decode = [](std::string_view bytes) {
    return core::decode_message(bytes);
  };
  return o;
}

TEST(TcpTransport, DeliversInFifoOrderOverSockets) {
  TcpTransport t(core_options(0.05, {0, 1}));
  std::mutex mu;
  std::vector<RequestId> got;
  t.register_node(NodeAddress::server(0),
                  [&](NodeAddress, PayloadPtr m) {
                    const std::scoped_lock lock(mu);
                    got.push_back(req_of(*m));
                  });
  t.register_node(NodeAddress::server(1), [](NodeAddress, PayloadPtr) {});
  t.start();
  for (RequestId r = 1; r <= 200; ++r) {
    t.send(NodeAddress::server(1), NodeAddress::server(0), ping(r));
  }
  ASSERT_TRUE(t.wait_quiescent(10.0));
  const std::scoped_lock lock(mu);
  ASSERT_EQ(got.size(), 200u);
  for (RequestId r = 1; r <= 200; ++r) EXPECT_EQ(got[r - 1], r);
  t.stop();
}

TEST(TcpTransport, FramesAreByteIdenticalToLegacyEncoder) {
  // The golden pin: every frame body that arrives off the socket must be
  // exactly core::encode_message of the payload that was sent — the same
  // bytes InMemTransport charges for (wire_size) and the messages tests
  // round-trip. A recording decode hook captures the raw bodies.
  std::mutex mu;
  std::vector<std::string> bodies;
  auto opts = core_options(0.05, {0, 1});
  opts.decode = [&](std::string_view bytes) {
    {
      const std::scoped_lock lock(mu);
      bodies.emplace_back(bytes);
    }
    return core::decode_message(bytes);
  };
  TcpTransport t(std::move(opts));
  t.register_node(NodeAddress::server(0), [](NodeAddress, PayloadPtr) {});
  t.register_node(NodeAddress::server(1), [](NodeAddress, PayloadPtr) {});
  t.start();

  std::vector<PayloadPtr> sent;
  sent.push_back(make_payload<core::ClientWrite>(1, 2,
                                                 Value::synthetic(9, 1448)));
  sent.push_back(make_payload<core::WriteCommit>(Tag{3, 1}, 7, 9, /*obj=*/5));
  sent.push_back(make_payload<core::RingBatch>(std::vector<PayloadPtr>{
      make_payload<core::PreWrite>(Tag{8, 2}, Value::synthetic(11, 512), 12,
                                   13),
      make_payload<core::WriteCommit>(Tag{9, 0}, 14, 15)}));
  std::uint64_t expected_bytes = 0;
  for (const auto& m : sent) {
    expected_bytes += m->wire_size();
    t.send(NodeAddress::server(0), NodeAddress::server(1), m);
  }
  ASSERT_TRUE(t.wait_quiescent(10.0));

  const std::scoped_lock lock(mu);
  ASSERT_EQ(bodies.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(bodies[i], core::encode_message(*sent[i]))
        << sent[i]->describe();
    EXPECT_EQ(bodies[i].size(), sent[i]->wire_size());
  }
  // Same per-batch accounting as InMemTransport: one transmission per
  // send() at exactly wire_size — a batch is charged once, not per part.
  EXPECT_EQ(t.total_transmissions(), sent.size());
  EXPECT_EQ(t.total_bytes_sent(), expected_bytes);
  t.stop();
}

TEST(TcpTransport, CrashSeversConnectionsAndNotifiesSurvivors) {
  TcpTransport t(core_options(0.02, {0, 1, 2}));
  std::atomic<int> delivered_to_crashed{0};
  std::atomic<int> crash_notices{0};
  std::atomic<ProcessId> crashed_id{kNoProcess};
  t.register_node(NodeAddress::server(0),
                  [&](NodeAddress, PayloadPtr) { ++delivered_to_crashed; });
  t.register_node(
      NodeAddress::server(1), [](NodeAddress, PayloadPtr) {},
      [&](ProcessId p) {
        ++crash_notices;
        crashed_id = p;
      });
  t.register_node(
      NodeAddress::server(2), [](NodeAddress, PayloadPtr) {},
      [&](ProcessId) { ++crash_notices; });
  t.start();

  t.crash(NodeAddress::server(0));
  EXPECT_FALSE(t.is_up(NodeAddress::server(0)));
  t.send(NodeAddress::server(1), NodeAddress::server(0), ping(1));
  // Detection delay (0.02 s) plus socket-teardown slack.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(delivered_to_crashed.load(), 0);
  EXPECT_EQ(crash_notices.load(), 2) << "both survivors notified";
  EXPECT_EQ(crashed_id.load(), 0u);
  t.stop();
}

TEST(TcpTransport, CrashedNodeCannotSend) {
  TcpTransport t(core_options(0.02, {0, 1}));
  std::atomic<int> got{0};
  t.register_node(NodeAddress::server(0), [](NodeAddress, PayloadPtr) {});
  t.register_node(NodeAddress::server(1),
                  [&](NodeAddress, PayloadPtr) { ++got; });
  t.start();
  t.crash(NodeAddress::server(0));
  t.send(NodeAddress::server(0), NodeAddress::server(1), ping(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(got.load(), 0);
  t.stop();
}

TEST(TcpTransport, TimersFireWithTokenInDeadlineOrder) {
  TcpTransport t(core_options(0.05, {0}));
  std::mutex mu;
  std::vector<std::uint64_t> order;
  t.register_node(NodeAddress::server(0), [](NodeAddress, PayloadPtr) {});
  t.register_node(
      NodeAddress::client(1), [](NodeAddress, PayloadPtr) {}, nullptr,
      [&](std::uint64_t token) {
        const std::scoped_lock lock(mu);
        order.push_back(token);
      });
  t.start();
  t.arm_timer(NodeAddress::client(1), 0.05, 3);
  t.arm_timer(NodeAddress::client(1), 0.01, 1);
  t.arm_timer(NodeAddress::client(1), 0.03, 2);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const std::scoped_lock lock(mu);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3}));
  t.stop();
}

TEST(TcpTransport, QuiescenceSeesQueuedWork) {
  TcpTransport t(core_options(0.05, {0, 1}));
  std::atomic<bool> release{false};
  std::atomic<int> handled{0};
  t.register_node(NodeAddress::server(0),
                  [&](NodeAddress, PayloadPtr) {
                    while (!release.load()) {
                      std::this_thread::sleep_for(std::chrono::milliseconds(1));
                    }
                    ++handled;
                  });
  t.register_node(NodeAddress::server(1), [](NodeAddress, PayloadPtr) {});
  t.start();
  t.send(NodeAddress::server(1), NodeAddress::server(0), ping(1));
  EXPECT_FALSE(t.wait_quiescent(0.05)) << "busy node is not quiescent";
  release = true;
  EXPECT_TRUE(t.wait_quiescent(10.0));
  EXPECT_EQ(handled.load(), 1);
  t.stop();
}

}  // namespace
}  // namespace hts::net

// --------------------------- full protocol stack over loopback sockets

namespace hts::harness {
namespace {

ThreadedClusterConfig tcp_cluster_config(std::size_t n_servers) {
  ThreadedClusterConfig cfg;
  cfg.n_servers = n_servers;
  cfg.transport = ThreadedClusterConfig::TransportKind::kTcp;
  return cfg;
}

TEST(TcpCluster, SequentialReadWriteOverSockets) {
  ThreadedCluster cluster(tcp_cluster_config(3));
  auto& client = cluster.add_client(0);
  cluster.start();

  EXPECT_TRUE(client.read().empty());
  client.write(Value::synthetic(1, 128));
  EXPECT_EQ(client.read(), Value::synthetic(1, 128));
  client.write(Value::synthetic(2, 2048));
  auto r = client.read_result();
  EXPECT_EQ(r.value, Value::synthetic(2, 2048));
  EXPECT_EQ(r.tag, (Tag{2, 0}));

  auto verdict = lincheck::check_register(cluster.history());
  EXPECT_TRUE(verdict.linearizable) << verdict.explanation;
}

TEST(TcpCluster, CrashRepairCompletesOverSockets) {
  // Kill a server mid-stream: the TCP-backed detection delay fires the
  // survivors' crash handlers, the ring heals, and every subsequent op
  // completes. The recorded history must stay linearizable throughout.
  auto cfg = tcp_cluster_config(4);
  cfg.detection_delay_s = 0.02;
  ThreadedCluster cluster(cfg);
  auto& client = cluster.add_client(0);
  auto& other = cluster.add_client(2);
  cluster.start();

  for (std::uint64_t v = 1; v <= 5; ++v) {
    client.write(Value::synthetic(v, 256));
  }
  cluster.crash_server(1);
  for (std::uint64_t v = 6; v <= 12; ++v) {
    client.write(Value::synthetic(v, 256));
    EXPECT_EQ(other.read().synthetic_seed(), v);
  }
  auto verdict = lincheck::check_register(cluster.history());
  EXPECT_TRUE(verdict.linearizable) << verdict.explanation;
}

TEST(TcpCluster, ConcurrentClientsLinearizableOverSockets) {
  auto cfg = tcp_cluster_config(3);
  ThreadedCluster cluster(cfg);
  std::vector<ThreadedCluster::BlockingClient*> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(&cluster.add_client(static_cast<ProcessId>(i % 3)));
  }
  cluster.start();

  std::vector<std::thread> threads;
  threads.reserve(clients.size());
  for (std::size_t c = 0; c < clients.size(); ++c) {
    threads.emplace_back([&, c] {
      for (std::uint64_t v = 1; v <= 15; ++v) {
        if ((c + v) % 3 == 0) {
          (void)clients[c]->read();
        } else {
          clients[c]->write(Value::synthetic(c * 100 + v, 64));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  auto verdict = lincheck::check_register(cluster.history());
  EXPECT_TRUE(verdict.linearizable) << verdict.explanation;
}

// ----------------------------------------- multi-process deployment

TEST(ProcCluster, PutGetRoundTripAcrossProcesses) {
  ProcClusterConfig cfg;
  cfg.n_servers = 3;
  ProcCluster cluster(cfg);
  cluster.start();

  EXPECT_TRUE(cluster.get(1).empty());
  cluster.put(1, Value::synthetic(7, 512));
  EXPECT_EQ(cluster.get(1), Value::synthetic(7, 512));
  cluster.put(2, Value::synthetic(8, 4096));
  EXPECT_EQ(cluster.get(2), Value::synthetic(8, 4096));
  cluster.put(1, Value::synthetic(9, 64));  // overwrite
  EXPECT_EQ(cluster.get(1), Value::synthetic(9, 64));
  cluster.stop();
}

TEST(ProcCluster, SigkilledServerIsDetectedAndRepaired) {
  // The paper's failure model for real: SIGKILL a server process — the
  // kernel closes its sockets, every peer sees a bye-less TCP break, crash
  // handlers fire after the detection delay, and the surviving majority
  // keeps serving (repair over sockets).
  ProcClusterConfig cfg;
  cfg.n_servers = 3;
  cfg.detection_delay_s = 0.02;
  ProcCluster cluster(cfg);
  cluster.start();

  cluster.put(1, Value::synthetic(1, 256));
  EXPECT_EQ(cluster.get(1), Value::synthetic(1, 256));
  EXPECT_TRUE(cluster.server_up(1));

  cluster.kill_server(1);
  ASSERT_TRUE(cluster.wait_server_down(1, 5.0))
      << "parent must detect the killed server via its broken connections";

  // Ops keep completing on the surviving majority — including ops that
  // need the ring to route around the dead slot.
  for (std::uint64_t v = 2; v <= 6; ++v) {
    cluster.put(1, Value::synthetic(v, 256));
    EXPECT_EQ(cluster.get(1), Value::synthetic(v, 256));
  }
  cluster.stop();
}

}  // namespace
}  // namespace hts::harness

int main(int argc, char** argv) {
  // A process re-exec'd as a ProcCluster server never runs the tests.
  if (hts::harness::ProcCluster::serve_child(argc, argv)) return 0;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
