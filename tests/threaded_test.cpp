// Integration tests on the threaded fabric: real threads, real concurrency,
// blocking clients, crash injection — and linearizability of everything that
// happened.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "harness/threaded_cluster.h"
#include "lincheck/checker.h"

namespace hts::harness {
namespace {

TEST(ThreadedCluster, SequentialReadWrite) {
  ThreadedClusterConfig cfg;
  cfg.n_servers = 3;
  ThreadedCluster cluster(cfg);
  auto& client = cluster.add_client(0);
  cluster.start();

  EXPECT_TRUE(client.read().empty());
  client.write(Value::synthetic(1, 128));
  EXPECT_EQ(client.read(), Value::synthetic(1, 128));
  client.write(Value::synthetic(2, 128));
  auto r = client.read_result();
  EXPECT_EQ(r.value, Value::synthetic(2, 128));
  EXPECT_EQ(r.tag, (Tag{2, 0}));

  auto verdict = lincheck::check_register(cluster.history());
  EXPECT_TRUE(verdict.linearizable) << verdict.explanation;
}

TEST(ThreadedCluster, ReadYourOwnWritesAcrossServers) {
  ThreadedClusterConfig cfg;
  cfg.n_servers = 5;
  ThreadedCluster cluster(cfg);
  auto& writer = cluster.add_client(0);
  std::vector<ThreadedCluster::BlockingClient*> readers;
  for (ProcessId p = 0; p < 5; ++p) readers.push_back(&cluster.add_client(p));
  cluster.start();

  for (std::uint64_t v = 1; v <= 10; ++v) {
    writer.write(Value::synthetic(v, 64));
    // Every server must serve the just-written value (write-all-available).
    for (auto* r : readers) {
      EXPECT_EQ(r->read().synthetic_seed(), v);
    }
  }
  auto verdict = lincheck::check_register(cluster.history());
  EXPECT_TRUE(verdict.linearizable) << verdict.explanation;
}

TEST(ThreadedCluster, ConcurrentClientsLinearizable) {
  ThreadedClusterConfig cfg;
  cfg.n_servers = 4;
  ThreadedCluster cluster(cfg);
  std::vector<ThreadedCluster::BlockingClient*> clients;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(&cluster.add_client(static_cast<ProcessId>(i % 4)));
  }
  cluster.start();

  std::atomic<std::uint64_t> seed{1};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      auto* c = clients[static_cast<std::size_t>(i)];
      for (int op = 0; op < 30; ++op) {
        if ((op + i) % 3 == 0) {
          c->write(Value::synthetic(seed.fetch_add(1), 256));
        } else {
          (void)c->read();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  auto h = cluster.history();
  EXPECT_EQ(h.size(), 8u * 30u);
  auto verdict = lincheck::check_register(h);
  EXPECT_TRUE(verdict.linearizable) << verdict.explanation;
  EXPECT_TRUE(lincheck::check_tag_order(h).linearizable);
}

TEST(ThreadedCluster, SurvivesCrashesUnderConcurrentLoad) {
  ThreadedClusterConfig cfg;
  cfg.n_servers = 4;
  cfg.client_retry_timeout_s = 0.05;
  ThreadedCluster cluster(cfg);
  std::vector<ThreadedCluster::BlockingClient*> clients;
  for (int i = 0; i < 6; ++i) {
    clients.push_back(&cluster.add_client(static_cast<ProcessId>(i % 4)));
  }
  cluster.start();

  std::atomic<std::uint64_t> seed{1};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < 6; ++i) {
    threads.emplace_back([&, i] {
      auto* c = clients[static_cast<std::size_t>(i)];
      std::uint64_t op = 0;
      while (!stop.load()) {
        if ((op++ + static_cast<std::uint64_t>(i)) % 2 == 0) {
          c->write(Value::synthetic(seed.fetch_add(1), 128));
        } else {
          (void)c->read();
        }
      }
    });
  }

  // Crash two of four servers while the load runs.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  cluster.crash_server(2);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  cluster.crash_server(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stop.store(true);
  for (auto& t : threads) t.join();

  EXPECT_FALSE(cluster.server_up(0));
  EXPECT_FALSE(cluster.server_up(2));
  EXPECT_TRUE(cluster.server_up(1));
  EXPECT_TRUE(cluster.server_up(3));

  auto verdict = lincheck::check_register(cluster.history());
  EXPECT_TRUE(verdict.linearizable) << verdict.explanation;
  EXPECT_GT(cluster.history().size(), 50u);
}

TEST(ThreadedCluster, WriteAfterAllButOneCrashed) {
  ThreadedClusterConfig cfg;
  cfg.n_servers = 3;
  cfg.client_retry_timeout_s = 0.05;
  ThreadedCluster cluster(cfg);
  auto& client = cluster.add_client(0);
  cluster.start();

  client.write(Value::synthetic(1, 64));
  cluster.crash_server(0);
  cluster.crash_server(2);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // Server 1 is the sole survivor; the client times out on its preferred
  // server and rotates to it.
  client.write(Value::synthetic(2, 64));
  EXPECT_EQ(client.read().synthetic_seed(), 2u);

  auto verdict = lincheck::check_register(cluster.history());
  EXPECT_TRUE(verdict.linearizable) << verdict.explanation;
}

}  // namespace
}  // namespace hts::harness
