// InMemTransport unit tests: delivery, FIFO order, serialization of a
// node's handlers, crash semantics, timers, quiescence detection — plus the
// scatter-gather frame codec (FrameWriter/FrameDecoder): byte parity with
// the legacy string encoder across every MsgKind, torn-stream reassembly at
// every byte boundary, and pool-reuse guarantees.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/messages.h"
#include "net/frame_writer.h"
#include "net/inmem_transport.h"

namespace hts::net {
namespace {

PayloadPtr ping(RequestId r) { return make_payload<core::ClientWriteAck>(r); }

RequestId req_of(const Payload& p) {
  return static_cast<const core::ClientWriteAck&>(p).req;
}

TEST(InMemTransport, DeliversInFifoOrder) {
  InMemTransport t(0.001);
  std::mutex mu;
  std::vector<RequestId> got;
  t.register_node(NodeAddress::server(0),
                  [&](NodeAddress, PayloadPtr m) {
                    const std::scoped_lock lock(mu);
                    got.push_back(req_of(*m));
                  });
  t.register_node(NodeAddress::server(1), [](NodeAddress, PayloadPtr) {});
  t.start();
  for (RequestId r = 1; r <= 100; ++r) {
    t.send(NodeAddress::server(1), NodeAddress::server(0), ping(r));
  }
  ASSERT_TRUE(t.wait_quiescent(5.0));
  const std::scoped_lock lock(mu);
  ASSERT_EQ(got.size(), 100u);
  for (RequestId r = 1; r <= 100; ++r) EXPECT_EQ(got[r - 1], r);
  t.stop();
}

TEST(InMemTransport, ChargesExactPerBatchByteCounts) {
  // One send() = one transmission at the payload's exact wire size: a
  // RingBatch frame is charged once (framing included), not per part —
  // the same per-batch cost model the simulator's network uses.
  InMemTransport t(0.001);
  t.register_node(NodeAddress::server(0), [](NodeAddress, PayloadPtr) {});
  t.register_node(NodeAddress::server(1), [](NodeAddress, PayloadPtr) {});
  t.start();

  auto single = make_payload<core::WriteCommit>(Tag{1, 0}, 7, 1);
  std::vector<PayloadPtr> parts;
  parts.push_back(make_payload<core::PreWrite>(Tag{2, 0},
                                               Value::synthetic(1, 512), 7, 2));
  parts.push_back(make_payload<core::WriteCommit>(Tag{1, 0}, 7, 1));
  auto batch = make_payload<core::RingBatch>(std::move(parts));
  const std::uint64_t expected_bytes = single->wire_size() + batch->wire_size();

  t.send(NodeAddress::server(0), NodeAddress::server(1), single);
  t.send(NodeAddress::server(0), NodeAddress::server(1), batch);
  ASSERT_TRUE(t.wait_quiescent(5.0));

  EXPECT_EQ(t.total_transmissions(), 2u);
  EXPECT_EQ(t.total_bytes_sent(), expected_bytes);

  // Dropped sends (dead destination) are not charged.
  t.crash(NodeAddress::server(1));
  ASSERT_TRUE(t.wait_quiescent(5.0));
  t.send(NodeAddress::server(0), NodeAddress::server(1), ping(9));
  EXPECT_EQ(t.total_transmissions(), 2u);
  t.stop();
}

TEST(InMemTransport, HandlerRunsSerialized) {
  InMemTransport t(0.001);
  std::atomic<int> concurrent{0};
  std::atomic<int> max_seen{0};
  std::atomic<int> handled{0};
  t.register_node(NodeAddress::server(0),
                  [&](NodeAddress, PayloadPtr) {
                    const int c = ++concurrent;
                    int prev = max_seen.load();
                    while (c > prev && !max_seen.compare_exchange_weak(prev, c)) {
                    }
                    std::this_thread::sleep_for(std::chrono::microseconds(100));
                    --concurrent;
                    ++handled;
                  });
  for (ProcessId p = 1; p <= 4; ++p) {
    t.register_node(NodeAddress::server(p), [](NodeAddress, PayloadPtr) {});
  }
  t.start();
  for (int i = 0; i < 50; ++i) {
    for (ProcessId p = 1; p <= 4; ++p) {
      t.send(NodeAddress::server(p), NodeAddress::server(0), ping(1));
    }
  }
  ASSERT_TRUE(t.wait_quiescent(10.0));
  EXPECT_EQ(handled.load(), 200);
  EXPECT_EQ(max_seen.load(), 1) << "a node's handler must never run "
                                   "concurrently with itself";
  t.stop();
}

TEST(InMemTransport, CrashStopsDeliveryAndNotifiesSurvivors) {
  InMemTransport t(0.005);
  std::atomic<int> delivered_to_crashed{0};
  std::atomic<int> crash_notices{0};
  std::atomic<ProcessId> crashed_id{kNoProcess};
  t.register_node(NodeAddress::server(0),
                  [&](NodeAddress, PayloadPtr) { ++delivered_to_crashed; });
  t.register_node(
      NodeAddress::server(1), [](NodeAddress, PayloadPtr) {},
      [&](ProcessId p) {
        ++crash_notices;
        crashed_id = p;
      });
  t.register_node(
      NodeAddress::server(2), [](NodeAddress, PayloadPtr) {},
      [&](ProcessId) { ++crash_notices; });
  t.start();

  t.crash(NodeAddress::server(0));
  EXPECT_FALSE(t.is_up(NodeAddress::server(0)));
  t.send(NodeAddress::server(1), NodeAddress::server(0), ping(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(delivered_to_crashed.load(), 0);
  EXPECT_EQ(crash_notices.load(), 2);  // both survivors notified
  EXPECT_EQ(crashed_id.load(), 0u);
  t.stop();
}

TEST(InMemTransport, CrashedNodeCannotSend) {
  InMemTransport t(0.001);
  std::atomic<int> got{0};
  t.register_node(NodeAddress::server(0), [](NodeAddress, PayloadPtr) {});
  t.register_node(NodeAddress::server(1),
                  [&](NodeAddress, PayloadPtr) { ++got; });
  t.start();
  t.crash(NodeAddress::server(0));
  t.send(NodeAddress::server(0), NodeAddress::server(1), ping(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(got.load(), 0);
  t.stop();
}

TEST(InMemTransport, TimersFireWithToken) {
  InMemTransport t(0.001);
  std::atomic<std::uint64_t> fired{0};
  t.register_node(
      NodeAddress::client(5), [](NodeAddress, PayloadPtr) {}, nullptr,
      [&](std::uint64_t token) { fired = token; });
  t.start();
  t.arm_timer(NodeAddress::client(5), 0.01, 42);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(fired.load(), 42u);
  t.stop();
}

TEST(InMemTransport, TimersOrderedByDeadline) {
  InMemTransport t(0.001);
  std::mutex mu;
  std::vector<std::uint64_t> order;
  t.register_node(
      NodeAddress::client(1), [](NodeAddress, PayloadPtr) {}, nullptr,
      [&](std::uint64_t token) {
        const std::scoped_lock lock(mu);
        order.push_back(token);
      });
  t.start();
  t.arm_timer(NodeAddress::client(1), 0.05, 3);
  t.arm_timer(NodeAddress::client(1), 0.01, 1);
  t.arm_timer(NodeAddress::client(1), 0.03, 2);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  const std::scoped_lock lock(mu);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3}));
  t.stop();
}

TEST(InMemTransport, SendToUnknownNodeIsDropped) {
  InMemTransport t(0.001);
  t.register_node(NodeAddress::server(0), [](NodeAddress, PayloadPtr) {});
  t.start();
  t.send(NodeAddress::server(0), NodeAddress::server(99), ping(1));  // no-op
  EXPECT_TRUE(t.wait_quiescent(1.0));
  t.stop();
}

TEST(InMemTransport, QuiescenceSeesQueuedWork) {
  InMemTransport t(0.001);
  std::atomic<bool> release{false};
  std::atomic<int> handled{0};
  t.register_node(NodeAddress::server(0),
                  [&](NodeAddress, PayloadPtr) {
                    while (!release.load()) {
                      std::this_thread::sleep_for(std::chrono::milliseconds(1));
                    }
                    ++handled;
                  });
  t.register_node(NodeAddress::server(1), [](NodeAddress, PayloadPtr) {});
  t.start();
  t.send(NodeAddress::server(1), NodeAddress::server(0), ping(1));
  EXPECT_FALSE(t.wait_quiescent(0.05)) << "busy node is not quiescent";
  release = true;
  EXPECT_TRUE(t.wait_quiescent(5.0));
  EXPECT_EQ(handled.load(), 1);
  t.stop();
}

// ------------------------------------------------- scatter-gather codec

/// One exemplar per MsgKind (1..17), with off-default object/epoch variants
/// so the flagged header paths are covered too. The transport-parity
/// invariant (tools/hts_lint.py) requires every kind listed here.
std::vector<PayloadPtr> one_of_every_kind(std::size_t value_size) {
  using namespace core;
  const Value v = Value::synthetic(9, value_size);
  std::vector<PayloadPtr> msgs;
  msgs.push_back(make_payload<ClientWrite>(1, 2, v, /*obj=*/7, /*epoch=*/3));
  msgs.push_back(make_payload<ClientWriteAck>(3, /*obj=*/7, /*epoch=*/3));
  msgs.push_back(make_payload<ClientRead>(4, 5, /*obj=*/7, /*epoch=*/3));
  msgs.push_back(make_payload<ClientReadAck>(6, v, Tag{7, 1}, /*obj=*/7));
  msgs.push_back(make_payload<PreWrite>(Tag{8, 2}, v, 12, 13, /*obj=*/7));
  msgs.push_back(make_payload<WriteCommit>(Tag{9, 0}, 14, 15));
  msgs.push_back(make_payload<SyncState>(Tag{10, 1}, v, /*obj=*/7));
  msgs.push_back(make_payload<RingBatch>(std::vector<PayloadPtr>{
      make_payload<PreWrite>(Tag{8, 2}, v, 12, 13),
      make_payload<WriteCommit>(Tag{9, 0}, 14, 15, /*obj=*/7),
      make_payload<SyncState>(Tag{5, 1}, v, /*obj=*/9)}));
  msgs.push_back(make_payload<MigrateState>(Tag{4, 1}, v, /*obj=*/5,
                                            /*epoch=*/3));
  msgs.push_back(make_payload<EpochNack>(2, 5, 4));
  msgs.push_back(make_payload<MigrateDedup>(
      std::vector<MigrateDedup::Window>{{4, 9, {11, 13}}, {6, 2, {}}},
      /*epoch=*/3));
  msgs.push_back(make_payload<FragWrite>(1234, 56, /*n=*/5, /*k=*/2,
                                         /*idx=*/3, /*init=*/true,
                                         /*vsize=*/4096, /*crc=*/0xDEADBEEF,
                                         std::string(value_size, 'f'),
                                         /*obj=*/9, /*epoch=*/2));
  msgs.push_back(make_payload<PreWriteFrag>(Tag{12, 3}, 900, 15, /*n=*/5,
                                            /*k=*/3, /*vsize=*/1u << 20));
  msgs.push_back(make_payload<CodedReadAck>(
      7, Tag{9, 2}, /*n=*/5, /*k=*/2, /*vsize=*/16,
      std::vector<FragPart>{{2, 0xABCD, "frag-two"}, {4, 0x1234, "frag-4"}},
      /*obj=*/3));
  msgs.push_back(make_payload<FragFetch>(42, 7, Tag{5, 1}, /*obj=*/2,
                                         /*epoch=*/1));
  msgs.push_back(make_payload<FragFetchAck>(
      7, Tag{5, 1}, 64, std::vector<FragPart>{{0, 0x77, "bytes"}}));
  msgs.push_back(make_payload<FragRepair>(
      /*origin=*/4, Tag{11, 4}, /*n=*/5, /*k=*/2, /*missing=*/1, /*vsize=*/32,
      std::vector<FragPart>{{0, 1, "a"}, {2, 3, "bb"}}, /*obj=*/6,
      /*epoch=*/3));
  return msgs;
}

TEST(FrameCodec, EveryMsgKindEncodesIdenticallyThroughFrameWriter) {
  // The transport-parity golden pin: for every message kind the
  // scatter-gather writer must produce the exact bytes of the legacy
  // string-returning encoder — they instantiate one template, and this test
  // keeps it that way.
  for (std::size_t size : {0ul, 1ul, 255ul, 1448ul, 8192ul}) {
    std::vector<std::uint16_t> kinds_seen;
    for (const auto& msg : one_of_every_kind(size)) {
      const std::string legacy = core::encode_message(*msg);
      FrameWriter w;
      core::encode_message_into(*msg, w);
      EXPECT_EQ(w.to_string(), legacy) << msg->describe();
      EXPECT_EQ(w.bytes_written(), legacy.size()) << msg->describe();
      kinds_seen.push_back(msg->kind());
    }
    // Nothing silently dropped from the exemplar list: kinds 1..17 covered.
    std::sort(kinds_seen.begin(), kinds_seen.end());
    ASSERT_EQ(kinds_seen.size(), 17u);
    for (std::uint16_t k = 1; k <= 17; ++k) EXPECT_EQ(kinds_seen[k - 1], k);
  }
}

TEST(FrameCodec, ParityHoldsAcrossSegmentBoundaries) {
  // Tiny segments force every message to straddle segment seams, including
  // the patched RingBatch length prefixes (mark_u32 seals segments).
  for (const auto& msg : one_of_every_kind(512)) {
    FrameWriter w(/*segment_bytes=*/16);
    core::encode_message_into(*msg, w);
    EXPECT_EQ(w.to_string(), core::encode_message(*msg)) << msg->describe();
  }
}

TEST(FrameCodec, TornStreamDecodesAtEveryByteBoundary) {
  // Build a stream of framed messages, then split it at every offset and
  // feed the two chunks: the decoder must reassemble the identical frame
  // sequence regardless of where TCP tore the stream.
  FrameWriter w;
  std::vector<std::string> bodies;
  for (const auto& msg : one_of_every_kind(64)) {
    const auto m = w.begin_frame();
    core::encode_message_into(*msg, w);
    w.end_frame(m);
    bodies.push_back(core::encode_message(*msg));
  }
  const std::string stream = w.to_string();
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameDecoder d;
    std::vector<std::string> got;
    auto sink = [&](std::string_view f) { got.emplace_back(f); };
    ASSERT_TRUE(d.feed(std::string_view(stream).substr(0, cut), sink));
    ASSERT_TRUE(d.feed(std::string_view(stream).substr(cut), sink));
    ASSERT_EQ(got, bodies) << "cut=" << cut;
    EXPECT_EQ(d.pending_bytes(), 0u);
  }
  // Worst case: one byte at a time.
  FrameDecoder d;
  std::vector<std::string> got;
  for (char c : stream) {
    ASSERT_TRUE(d.feed(std::string_view(&c, 1),
                       [&](std::string_view f) { got.emplace_back(f); }));
  }
  EXPECT_EQ(got, bodies);
}

TEST(FrameCodec, DecodedTornFramesSurviveTheRealDecoder) {
  // End-to-end: torn frames reassembled by FrameDecoder must decode into
  // the original messages via the real codec (what TcpTransport does).
  FrameWriter w;
  const auto msgs = one_of_every_kind(128);
  for (const auto& msg : msgs) {
    const auto m = w.begin_frame();
    core::encode_message_into(*msg, w);
    w.end_frame(m);
  }
  const std::string stream = w.to_string();
  FrameDecoder d;
  std::size_t i = 0;
  // Feed in awkward 7-byte chunks.
  for (std::size_t off = 0; off < stream.size(); off += 7) {
    ASSERT_TRUE(
        d.feed(std::string_view(stream).substr(off, 7), [&](std::string_view f) {
          const auto decoded = core::decode_message(f);
          ASSERT_LT(i, msgs.size());
          EXPECT_EQ(decoded->kind(), msgs[i]->kind());
          EXPECT_EQ(decoded->describe(), msgs[i]->describe());
          ++i;
        }));
  }
  EXPECT_EQ(i, msgs.size());
}

TEST(FrameCodec, OversizedFramePoisonsDecoder) {
  FrameDecoder d(/*max_frame=*/1024);
  std::string huge(4, '\0');
  huge[0] = '\x01';
  huge[2] = '\x10';  // length 0x100001 > 1024
  int frames = 0;
  EXPECT_FALSE(d.feed(huge, [&](std::string_view) { ++frames; }));
  EXPECT_EQ(frames, 0);
  // Poisoned forever, even for well-formed input.
  EXPECT_FALSE(d.feed(std::string("\x01\0\0\0x", 5),
                      [&](std::string_view) { ++frames; }));
  EXPECT_EQ(frames, 0);
}

TEST(FrameCodec, ClearReturnsSegmentsToPoolAndReusesThem) {
  // Steady state is allocation-free: after the first batch grows the pool,
  // clear() + re-encode must not grow it again, and the bytes must be
  // identical run over run.
  FrameWriter w;
  const auto msgs = one_of_every_kind(1448);
  auto encode_all = [&] {
    for (const auto& msg : msgs) {
      const auto m = w.begin_frame();
      core::encode_message_into(*msg, w);
      w.end_frame(m);
    }
    return w.to_string();
  };
  const std::string first = encode_all();
  const std::size_t pool = w.pooled_segments();
  ASSERT_GT(pool, 0u);
  for (int round = 0; round < 5; ++round) {
    w.clear();
    EXPECT_TRUE(w.empty());
    EXPECT_EQ(encode_all(), first);
    EXPECT_EQ(w.pooled_segments(), pool) << "pool must not grow on reuse";
  }
}

TEST(FrameCodec, MarksPatchCorrectBytesAfterMultiSegmentBatch) {
  // Regression: mark_u32 once derived its offset from the last *pooled*
  // segment instead of the segment being written. After a batch grows the
  // pool to 2+ segments, a cleared writer has fewer segments in use than
  // pooled, so every mark came back with the stale tail's offset (0):
  // later frames kept a zero length prefix (which TcpTransport reads as a
  // graceful bye) and earlier prefixes were silently clobbered.
  FrameWriter w(/*segment_bytes=*/64);
  {
    const auto m = w.begin_frame();
    w.bytes(std::string(200, 'x'));  // spans 4+ segments of 64 bytes
    w.end_frame(m);
  }
  ASSERT_GE(w.pooled_segments(), 2u);
  w.clear();
  // Two small frames in the first segment: the second frame's mark sits
  // mid-segment, exactly where the stale offset diverges from the real one.
  std::vector<std::string> bodies;
  for (int i = 0; i < 2; ++i) {
    const auto m = w.begin_frame();
    w.bytes("hello");  // 9-byte body: u32 len + 5 chars
    w.end_frame(m);
    bodies.push_back(std::string("\x05\x00\x00\x00", 4) + "hello");
  }
  FrameDecoder d;
  std::vector<std::string> got;
  ASSERT_TRUE(
      d.feed(w.to_string(), [&](std::string_view f) { got.emplace_back(f); }));
  EXPECT_EQ(got, bodies);
  EXPECT_EQ(d.pending_bytes(), 0u);
}

TEST(FrameCodec, IovCoversAllBytesAndHonoursSkip) {
  FrameWriter w(/*segment_bytes=*/32);
  const auto m = w.begin_frame();
  core::encode_message_into(
      *make_payload<core::PreWrite>(Tag{8, 2}, Value::synthetic(3, 200), 12,
                                    13),
      w);
  w.end_frame(m);
  const std::string all = w.to_string();
  for (std::size_t skip = 0; skip <= all.size(); ++skip) {
    std::string gathered;
    for (const iovec& io : w.iov(skip)) {
      gathered.append(static_cast<const char*>(io.iov_base), io.iov_len);
    }
    EXPECT_EQ(gathered, all.substr(skip)) << "skip=" << skip;
  }
}

}  // namespace
}  // namespace hts::net
