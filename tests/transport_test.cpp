// InMemTransport unit tests: delivery, FIFO order, serialization of a
// node's handlers, crash semantics, timers, quiescence detection.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "core/messages.h"
#include "net/inmem_transport.h"

namespace hts::net {
namespace {

PayloadPtr ping(RequestId r) { return make_payload<core::ClientWriteAck>(r); }

RequestId req_of(const Payload& p) {
  return static_cast<const core::ClientWriteAck&>(p).req;
}

TEST(InMemTransport, DeliversInFifoOrder) {
  InMemTransport t(0.001);
  std::mutex mu;
  std::vector<RequestId> got;
  t.register_node(NodeAddress::server(0),
                  [&](NodeAddress, PayloadPtr m) {
                    const std::scoped_lock lock(mu);
                    got.push_back(req_of(*m));
                  });
  t.register_node(NodeAddress::server(1), [](NodeAddress, PayloadPtr) {});
  t.start();
  for (RequestId r = 1; r <= 100; ++r) {
    t.send(NodeAddress::server(1), NodeAddress::server(0), ping(r));
  }
  ASSERT_TRUE(t.wait_quiescent(5.0));
  const std::scoped_lock lock(mu);
  ASSERT_EQ(got.size(), 100u);
  for (RequestId r = 1; r <= 100; ++r) EXPECT_EQ(got[r - 1], r);
  t.stop();
}

TEST(InMemTransport, ChargesExactPerBatchByteCounts) {
  // One send() = one transmission at the payload's exact wire size: a
  // RingBatch frame is charged once (framing included), not per part —
  // the same per-batch cost model the simulator's network uses.
  InMemTransport t(0.001);
  t.register_node(NodeAddress::server(0), [](NodeAddress, PayloadPtr) {});
  t.register_node(NodeAddress::server(1), [](NodeAddress, PayloadPtr) {});
  t.start();

  auto single = make_payload<core::WriteCommit>(Tag{1, 0}, 7, 1);
  std::vector<PayloadPtr> parts;
  parts.push_back(make_payload<core::PreWrite>(Tag{2, 0},
                                               Value::synthetic(1, 512), 7, 2));
  parts.push_back(make_payload<core::WriteCommit>(Tag{1, 0}, 7, 1));
  auto batch = make_payload<core::RingBatch>(std::move(parts));
  const std::uint64_t expected_bytes = single->wire_size() + batch->wire_size();

  t.send(NodeAddress::server(0), NodeAddress::server(1), single);
  t.send(NodeAddress::server(0), NodeAddress::server(1), batch);
  ASSERT_TRUE(t.wait_quiescent(5.0));

  EXPECT_EQ(t.total_transmissions(), 2u);
  EXPECT_EQ(t.total_bytes_sent(), expected_bytes);

  // Dropped sends (dead destination) are not charged.
  t.crash(NodeAddress::server(1));
  ASSERT_TRUE(t.wait_quiescent(5.0));
  t.send(NodeAddress::server(0), NodeAddress::server(1), ping(9));
  EXPECT_EQ(t.total_transmissions(), 2u);
  t.stop();
}

TEST(InMemTransport, HandlerRunsSerialized) {
  InMemTransport t(0.001);
  std::atomic<int> concurrent{0};
  std::atomic<int> max_seen{0};
  std::atomic<int> handled{0};
  t.register_node(NodeAddress::server(0),
                  [&](NodeAddress, PayloadPtr) {
                    const int c = ++concurrent;
                    int prev = max_seen.load();
                    while (c > prev && !max_seen.compare_exchange_weak(prev, c)) {
                    }
                    std::this_thread::sleep_for(std::chrono::microseconds(100));
                    --concurrent;
                    ++handled;
                  });
  for (ProcessId p = 1; p <= 4; ++p) {
    t.register_node(NodeAddress::server(p), [](NodeAddress, PayloadPtr) {});
  }
  t.start();
  for (int i = 0; i < 50; ++i) {
    for (ProcessId p = 1; p <= 4; ++p) {
      t.send(NodeAddress::server(p), NodeAddress::server(0), ping(1));
    }
  }
  ASSERT_TRUE(t.wait_quiescent(10.0));
  EXPECT_EQ(handled.load(), 200);
  EXPECT_EQ(max_seen.load(), 1) << "a node's handler must never run "
                                   "concurrently with itself";
  t.stop();
}

TEST(InMemTransport, CrashStopsDeliveryAndNotifiesSurvivors) {
  InMemTransport t(0.005);
  std::atomic<int> delivered_to_crashed{0};
  std::atomic<int> crash_notices{0};
  std::atomic<ProcessId> crashed_id{kNoProcess};
  t.register_node(NodeAddress::server(0),
                  [&](NodeAddress, PayloadPtr) { ++delivered_to_crashed; });
  t.register_node(
      NodeAddress::server(1), [](NodeAddress, PayloadPtr) {},
      [&](ProcessId p) {
        ++crash_notices;
        crashed_id = p;
      });
  t.register_node(
      NodeAddress::server(2), [](NodeAddress, PayloadPtr) {},
      [&](ProcessId) { ++crash_notices; });
  t.start();

  t.crash(NodeAddress::server(0));
  EXPECT_FALSE(t.is_up(NodeAddress::server(0)));
  t.send(NodeAddress::server(1), NodeAddress::server(0), ping(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(delivered_to_crashed.load(), 0);
  EXPECT_EQ(crash_notices.load(), 2);  // both survivors notified
  EXPECT_EQ(crashed_id.load(), 0u);
  t.stop();
}

TEST(InMemTransport, CrashedNodeCannotSend) {
  InMemTransport t(0.001);
  std::atomic<int> got{0};
  t.register_node(NodeAddress::server(0), [](NodeAddress, PayloadPtr) {});
  t.register_node(NodeAddress::server(1),
                  [&](NodeAddress, PayloadPtr) { ++got; });
  t.start();
  t.crash(NodeAddress::server(0));
  t.send(NodeAddress::server(0), NodeAddress::server(1), ping(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(got.load(), 0);
  t.stop();
}

TEST(InMemTransport, TimersFireWithToken) {
  InMemTransport t(0.001);
  std::atomic<std::uint64_t> fired{0};
  t.register_node(
      NodeAddress::client(5), [](NodeAddress, PayloadPtr) {}, nullptr,
      [&](std::uint64_t token) { fired = token; });
  t.start();
  t.arm_timer(NodeAddress::client(5), 0.01, 42);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(fired.load(), 42u);
  t.stop();
}

TEST(InMemTransport, TimersOrderedByDeadline) {
  InMemTransport t(0.001);
  std::mutex mu;
  std::vector<std::uint64_t> order;
  t.register_node(
      NodeAddress::client(1), [](NodeAddress, PayloadPtr) {}, nullptr,
      [&](std::uint64_t token) {
        const std::scoped_lock lock(mu);
        order.push_back(token);
      });
  t.start();
  t.arm_timer(NodeAddress::client(1), 0.05, 3);
  t.arm_timer(NodeAddress::client(1), 0.01, 1);
  t.arm_timer(NodeAddress::client(1), 0.03, 2);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  const std::scoped_lock lock(mu);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3}));
  t.stop();
}

TEST(InMemTransport, SendToUnknownNodeIsDropped) {
  InMemTransport t(0.001);
  t.register_node(NodeAddress::server(0), [](NodeAddress, PayloadPtr) {});
  t.start();
  t.send(NodeAddress::server(0), NodeAddress::server(99), ping(1));  // no-op
  EXPECT_TRUE(t.wait_quiescent(1.0));
  t.stop();
}

TEST(InMemTransport, QuiescenceSeesQueuedWork) {
  InMemTransport t(0.001);
  std::atomic<bool> release{false};
  std::atomic<int> handled{0};
  t.register_node(NodeAddress::server(0),
                  [&](NodeAddress, PayloadPtr) {
                    while (!release.load()) {
                      std::this_thread::sleep_for(std::chrono::milliseconds(1));
                    }
                    ++handled;
                  });
  t.register_node(NodeAddress::server(1), [](NodeAddress, PayloadPtr) {});
  t.start();
  t.send(NodeAddress::server(1), NodeAddress::server(0), ping(1));
  EXPECT_FALSE(t.wait_quiescent(0.05)) << "busy node is not quiescent";
  release = true;
  EXPECT_TRUE(t.wait_quiescent(5.0));
  EXPECT_EQ(handled.load(), 1);
  t.stop();
}

}  // namespace
}  // namespace hts::net
