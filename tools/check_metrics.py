#!/usr/bin/env python3
"""Validate an hts-metrics-v1 export against tools/metrics_schema.json.

Usage: check_metrics.py EXPORT.json [SCHEMA.json]

Checks, in order:
  1. document shape: the schema tag and the four metric sections plus the
     trace occupancy object, each with the right JSON types;
  2. name coverage: every required counter/gauge/histogram/series from the
     schema file exists (and every required name *prefix* matches something);
  3. structural invariants: histogram bucket counts sum to the sample count
     and mean * count == sum; series bucket widths are positive; trace
     size + dropped == total;
  4. cross-checks: the "ring.batch_fill" histogram mean must equal
     ring.total.ring_messages / ring.total.transmissions (every
     next_ring_batch() pull records into the shared histogram, so the two
     are the same quantity computed two ways).

Exits 0 and prints a one-line summary on success; prints every failure and
exits 1 otherwise. Stdlib only.
"""

import json
import os
import sys

errors = []


def fail(msg):
    errors.append(msg)


def require_section(doc, key, typ):
    if key not in doc:
        fail(f"missing top-level section {key!r}")
        return {}
    if not isinstance(doc[key], typ):
        fail(f"section {key!r} is {type(doc[key]).__name__}, "
             f"expected {typ.__name__}")
        return {}
    return doc[key]


def check_names(section, kind, required, prefixes):
    for name in required:
        if name not in section:
            fail(f"missing required {kind} {name!r}")
    for prefix in prefixes:
        if not any(name.startswith(prefix) for name in section):
            fail(f"no {kind} matches required prefix {prefix!r}")


def check_histograms(hists):
    for name, h in hists.items():
        if not isinstance(h, dict):
            fail(f"histogram {name!r} is not an object")
            continue
        missing = {"count", "sum", "mean", "bounds", "buckets"} - set(h)
        if missing:
            fail(f"histogram {name!r} missing keys {sorted(missing)}")
            continue
        if len(h["buckets"]) != len(h["bounds"]) + 1:
            fail(f"histogram {name!r}: {len(h['buckets'])} buckets for "
                 f"{len(h['bounds'])} bounds (want bounds + 1)")
        if sum(h["buckets"]) != h["count"]:
            fail(f"histogram {name!r}: bucket counts sum to "
                 f"{sum(h['buckets'])}, count says {h['count']}")
        if h["bounds"] != sorted(h["bounds"]):
            fail(f"histogram {name!r}: bounds not sorted")
        if h["count"] > 0:
            want = h["sum"] / h["count"]
            if abs(h["mean"] - want) > 1e-9 * max(1.0, abs(want)):
                fail(f"histogram {name!r}: mean {h['mean']} != "
                     f"sum/count {want}")
        elif h["mean"] != 0:
            fail(f"histogram {name!r}: empty but mean is {h['mean']}")


def check_series(series):
    for name, s in series.items():
        if not isinstance(s, dict):
            fail(f"series {name!r} is not an object")
            continue
        if s.get("bucket_width_s", 0) <= 0:
            fail(f"series {name!r}: non-positive bucket width")
        if not isinstance(s.get("buckets"), list):
            fail(f"series {name!r}: buckets is not an array")


def check_trace(trace):
    for key in ("size", "total", "dropped"):
        if not isinstance(trace.get(key), int) or trace.get(key, -1) < 0:
            fail(f"trace.{key} missing or not a non-negative integer")
            return
    if trace["size"] + trace["dropped"] != trace["total"]:
        fail(f"trace occupancy inconsistent: size {trace['size']} + "
             f"dropped {trace['dropped']} != total {trace['total']}")


def check_cross(schema, counters, hists):
    for chk in schema.get("cross_checks", []):
        h = hists.get(chk["histogram"])
        num = counters.get(chk["numerator"])
        den = counters.get(chk["denominator"])
        if h is None or num is None or den is None:
            fail(f"cross-check {chk['name']!r}: missing operands")
            continue
        if den == 0:
            if h["count"] != 0:
                fail(f"cross-check {chk['name']!r}: zero {chk['denominator']}"
                     f" but histogram has {h['count']} samples")
            continue
        want = num / den
        tol = chk.get("rel_tol", 1e-9) * max(1.0, abs(want))
        if abs(h["mean"] - want) > tol:
            fail(f"cross-check {chk['name']!r}: histogram mean {h['mean']} "
                 f"!= {chk['numerator']}/{chk['denominator']} = {want}")


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    export_path = argv[1]
    schema_path = argv[2] if len(argv) == 3 else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "metrics_schema.json")

    with open(export_path) as f:
        doc = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)

    if doc.get("schema") != schema["schema"]:
        fail(f"schema tag {doc.get('schema')!r}, "
             f"expected {schema['schema']!r}")

    counters = require_section(doc, "counters", dict)
    gauges = require_section(doc, "gauges", dict)
    hists = require_section(doc, "histograms", dict)
    series = require_section(doc, "series", dict)
    trace = require_section(doc, "trace", dict)

    check_names(counters, "counter", schema.get("required_counters", []),
                schema.get("required_counter_prefixes", []))
    check_names(gauges, "gauge", schema.get("required_gauges", []),
                schema.get("required_gauge_prefixes", []))
    check_names(hists, "histogram", schema.get("required_histograms", []), [])
    check_names(series, "series", schema.get("required_series", []), [])

    check_histograms(hists)
    check_series(series)
    if trace:
        check_trace(trace)
    check_cross(schema, counters, hists)

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        print(f"{export_path}: {len(errors)} schema violation(s)",
              file=sys.stderr)
        return 1
    print(f"{export_path}: OK — {len(counters)} counters, {len(gauges)} "
          f"gauges, {len(hists)} histograms, {len(series)} series, "
          f"{doc['trace']['total']} trace events")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
