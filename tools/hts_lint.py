#!/usr/bin/env python3
"""hts-lint — repo-specific protocol & concurrency invariant checker.

Static checks that the compilers cannot express, run in CI next to
clang-tidy and the -Wthread-safety pass (DESIGN.md D10):

  msgkind-coverage   every MsgKind in src/core/messages.h has an encode
                     case and a decode case in src/core/messages.cpp, and
                     its struct is exercised by a test whose name contains
                     "RoundTrip".
  raii-locking       no naked .lock()/.unlock()/.lock_shared()/... calls in
                     src/ outside the annotated wrapper
                     (src/common/thread_annotations.h) — locking is RAII
                     via sync::MutexLock/WriterLock/ReaderLock only, so the
                     thread-safety analysis sees every critical section.
  probe-null-guard   every obs probe dereference (`rec->`, `recorder->`)
                     sits within a few lines of a null guard — probes are
                     optional and detach by nulling the recorder.
  determinism        src/sim/ and src/core/ contain no wall-clock or
                     ambient-randomness calls (simulated time must be a
                     pure function of the seed); elsewhere in src/ the raw
                     clock APIs appear only in src/common/clock.h, the
                     repo's single clock authority.
  transport-parity   the scatter-gather encoder (net::FrameWriter) produces
                     the same bytes as the legacy string encoder for every
                     MsgKind: both public entry points in messages.cpp must
                     delegate to the one encode_into_sink template (parity
                     by construction), and every enum kind must appear in
                     the parity exemplar list in tests/transport_test.cpp
                     (make_payload<Kind> in the FrameCodec suite).

Usage:
  tools/hts_lint.py [--repo-root DIR] [--compile-commands PATH]
  tools/hts_lint.py --self-test

The file set is compile_commands-driven when the database is available
(every TU under src/ that the build actually compiles, plus all headers
under src/); it falls back to walking src/ otherwise. --self-test seeds one
violation of each invariant into an in-memory copy of the tree and fails
loudly unless every check catches its seed.

Exit status: 0 clean, 1 violations found, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

WRAPPER = "src/common/thread_annotations.h"
CLOCK_AUTHORITY = "src/common/clock.h"
DETERMINISTIC_DIRS = ("src/sim/", "src/core/")

# Clock/randomness sources. Durations (std::chrono::milliseconds) are fine
# everywhere — only *sources* of nondeterminism are flagged.
RAW_CLOCK_RE = re.compile(
    r"steady_clock|system_clock|high_resolution_clock|gettimeofday"
)
RAW_RANDOM_RE = re.compile(
    r"\brandom_device\b|\bmt19937\b|\bs?rand\s*\(|\btime\s*\(\s*(?:0|NULL|nullptr)\s*\)"
)
# The clock helper itself counts as wall clock inside the deterministic dirs.
CLK_HELPER_RE = re.compile(r"\bclk::")

NAKED_LOCK_RE = re.compile(
    r"\.\s*(?:lock|unlock|lock_shared|unlock_shared|try_lock|try_lock_shared)\s*\("
)

PROBE_DEREF_RE = re.compile(r"\b(?:rec|recorder)(?:_)?->")
PROBE_GUARD_RE = re.compile(
    r"(?:rec|recorder)(?:_)?\s*(?:==|!=)\s*nullptr|attached\s*\(\)"
)
PROBE_GUARD_WINDOW = 15  # lines above a dereference the guard may sit in

ENUM_RE = re.compile(r"enum\s+MsgKind[^{]*\{(?P<body>[^}]*)\}", re.S)
ENUM_ENTRY_RE = re.compile(r"\bk(\w+)\s*=\s*\d+")
TEST_RE = re.compile(r"TEST(?:_F|_P)?\s*\(\s*(\w+)\s*,\s*(\w+)\s*\)")


class Violation:
    def __init__(self, check: str, path: str, line: int, msg: str):
        self.check = check
        self.path = path
        self.line = line
        self.msg = msg

    def __str__(self) -> str:
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.check}] {self.msg}"


def load_tree(repo_root: Path, compile_commands: Path | None) -> dict[str, str]:
    """Relative path -> content for everything the checks look at."""
    files: dict[str, str] = {}

    def add(p: Path) -> None:
        rel = p.relative_to(repo_root).as_posix()
        try:
            files[rel] = p.read_text(encoding="utf-8", errors="replace")
        except OSError:
            pass

    tus: set[Path] = set()
    if compile_commands and compile_commands.is_file():
        for entry in json.loads(compile_commands.read_text()):
            src = Path(entry["directory"], entry["file"]).resolve()
            try:
                rel = src.relative_to(repo_root)
            except ValueError:
                continue  # gtest, system TUs
            if rel.as_posix().startswith("src/"):
                tus.add(src)
    for p in tus:
        add(p)
    # Headers (and, without a database, all sources) come from the walk.
    exts = {".h", ".hpp"} if tus else {".h", ".hpp", ".cc", ".cpp"}
    for p in sorted((repo_root / "src").rglob("*")):
        if p.suffix in exts and p.is_file():
            add(p)
    for p in sorted((repo_root / "tests").glob("*.cpp")):
        add(p)
    return files


# ------------------------------------------------------------------ checks


def check_msgkind_coverage(files: dict[str, str]) -> list[Violation]:
    out: list[Violation] = []
    header = files.get("src/core/messages.h")
    impl = files.get("src/core/messages.cpp")
    if header is None or impl is None:
        return [Violation("msgkind-coverage", "src/core/messages.h", 0,
                          "messages.h/messages.cpp not found")]
    enum = ENUM_RE.search(header)
    if enum is None:
        return [Violation("msgkind-coverage", "src/core/messages.h", 0,
                          "MsgKind enum not found")]
    kinds = ENUM_ENTRY_RE.findall(enum.group("body"))
    if not kinds:
        return [Violation("msgkind-coverage", "src/core/messages.h", 0,
                          "MsgKind enum has no entries")]

    # Bodies of every test whose name mentions RoundTrip, across all tests.
    roundtrip_text: list[str] = []
    for path, text in files.items():
        if not path.startswith("tests/"):
            continue
        matches = list(TEST_RE.finditer(text))
        for i, m in enumerate(matches):
            if "roundtrip" not in (m.group(1) + m.group(2)).lower():
                continue
            end = matches[i + 1].start() if i + 1 < len(matches) else len(text)
            roundtrip_text.append(text[m.start():end])
    roundtrips = "\n".join(roundtrip_text)

    for name in kinds:
        cases = len(re.findall(rf"\bcase\s+(?:MsgKind::)?k{name}\s*:", impl))
        if cases < 2:
            out.append(Violation(
                "msgkind-coverage", "src/core/messages.cpp", 0,
                f"MsgKind k{name}: found {cases} `case k{name}:` "
                f"labels, need 2 (encode_message and decode switch)"))
        if not re.search(rf"\b{name}\b", roundtrips):
            out.append(Violation(
                "msgkind-coverage", "src/core/messages.h", 0,
                f"MsgKind k{name}: struct {name} never appears in a "
                f"test named *RoundTrip* under tests/"))
    return out


def check_raii_locking(files: dict[str, str]) -> list[Violation]:
    out: list[Violation] = []
    for path, text in files.items():
        if not path.startswith("src/") or path == WRAPPER:
            continue
        for ln, line in enumerate(text.splitlines(), 1):
            code = line.split("//")[0]
            if NAKED_LOCK_RE.search(code):
                out.append(Violation(
                    "raii-locking", path, ln,
                    "naked mutex lock/unlock call — use sync::MutexLock/"
                    "WriterLock/ReaderLock so the thread-safety analysis "
                    "sees the critical section"))
    return out


def check_probe_null_guard(files: dict[str, str]) -> list[Violation]:
    out: list[Violation] = []
    for path, text in files.items():
        if not path.startswith("src/"):
            continue
        # Comments stripped for the guard window too — prose mentioning
        # `attached()` must not satisfy the check.
        code_lines = [line.split("//")[0] for line in text.splitlines()]
        for ln, code in enumerate(code_lines, 1):
            if not PROBE_DEREF_RE.search(code):
                continue
            lo = max(0, ln - 1 - PROBE_GUARD_WINDOW)
            window = "\n".join(code_lines[lo:ln])
            if not PROBE_GUARD_RE.search(window):
                out.append(Violation(
                    "probe-null-guard", path, ln,
                    "probe/recorder dereference with no null guard within "
                    f"{PROBE_GUARD_WINDOW} lines — probes are optional"))
    return out


def check_determinism(files: dict[str, str]) -> list[Violation]:
    out: list[Violation] = []
    for path, text in files.items():
        if not path.startswith("src/"):
            continue
        deterministic = path.startswith(DETERMINISTIC_DIRS)
        for ln, line in enumerate(text.splitlines(), 1):
            code = line.split("//")[0]
            if RAW_RANDOM_RE.search(code):
                out.append(Violation(
                    "determinism", path, ln,
                    "ambient randomness — seeds must flow in explicitly"))
                continue
            if deterministic:
                if RAW_CLOCK_RE.search(code) or CLK_HELPER_RE.search(code):
                    out.append(Violation(
                        "determinism", path, ln,
                        "wall-clock use in deterministic code (src/sim, "
                        "src/core run on simulated/injected time only)"))
            elif path != CLOCK_AUTHORITY and RAW_CLOCK_RE.search(code):
                out.append(Violation(
                    "determinism", path, ln,
                    f"raw clock API outside {CLOCK_AUTHORITY} — go through "
                    "hts::clk so the lint can audit every wall-clock site"))
    return out


def check_transport_parity(files: dict[str, str]) -> list[Violation]:
    out: list[Violation] = []
    header = files.get("src/core/messages.h")
    impl = files.get("src/core/messages.cpp")
    test = files.get("tests/transport_test.cpp")
    if header is None or impl is None or test is None:
        return [Violation("transport-parity", "src/core/messages.cpp", 0,
                          "messages.{h,cpp} or tests/transport_test.cpp "
                          "not found")]

    # (a) Parity by construction: both entry points delegate to the single
    # encode_into_sink template — a second hand-rolled switch in either one
    # could drift from the other.
    if not re.search(r"template\s*<\s*typename\s+Sink\s*>", impl):
        out.append(Violation(
            "transport-parity", "src/core/messages.cpp", 0,
            "encode_into_sink<Sink> template not found — the legacy and "
            "scatter-gather encoders must share one encode switch"))
    for fn in ("encode_message", "encode_message_into"):
        pat = re.compile(
            rf"\b{fn}\s*\([^)]*\)\s*\{{[^}}]*encode_into_sink\s*\(", re.S)
        if not pat.search(impl):
            out.append(Violation(
                "transport-parity", "src/core/messages.cpp", 0,
                f"{fn} does not delegate to encode_into_sink — both "
                "encoders must instantiate the same template"))

    # (b) Every MsgKind is exercised by the byte-parity test: the exemplar
    # builder in tests/transport_test.cpp must construct each kind.
    enum = ENUM_RE.search(header)
    if enum is None:
        out.append(Violation("transport-parity", "src/core/messages.h", 0,
                             "MsgKind enum not found"))
        return out
    for name in ENUM_ENTRY_RE.findall(enum.group("body")):
        if not re.search(rf"make_payload<\s*(?:core::)?{name}\s*[<(>]", test):
            out.append(Violation(
                "transport-parity", "tests/transport_test.cpp", 0,
                f"MsgKind k{name}: {name} is never constructed in the "
                "FrameWriter parity exemplars (one_of_every_kind) — the "
                "scatter-gather encoder would be unpinned for this kind"))
    return out


CHECKS = {
    "msgkind-coverage": check_msgkind_coverage,
    "raii-locking": check_raii_locking,
    "probe-null-guard": check_probe_null_guard,
    "determinism": check_determinism,
    "transport-parity": check_transport_parity,
}


def run_checks(files: dict[str, str]) -> list[Violation]:
    out: list[Violation] = []
    for check in CHECKS.values():
        out.extend(check(files))
    return out


# --------------------------------------------------------------- self-test

def self_test(files: dict[str, str]) -> int:
    """Seed one violation per invariant; every seed must be caught."""
    base = run_checks(files)
    if base:
        print("self-test requires a clean tree; current violations:")
        for v in base:
            print(f"  {v}")
        return 1

    def patched(path: str, old: str, new: str) -> dict[str, str]:
        copy = dict(files)
        assert old in copy[path], f"self-test anchor missing in {path}: {old!r}"
        copy[path] = copy[path].replace(old, new, 1)
        return copy

    seeds: list[tuple[str, dict[str, str]]] = [
        # A kind with no encode/decode cases and no roundtrip test.
        ("msgkind-coverage", patched(
            "src/core/messages.h", "kMigrateDedup = 11,",
            "kMigrateDedup = 11,\n  kBogusProbe = 12,")),
        # An encode case deleted: coverage drops below the 2-label floor.
        ("msgkind-coverage", patched(
            "src/core/messages.cpp", "case kClientRead: {",
            "case kClientRead - 0: {")),
        # A naked lock call outside the wrapper.
        ("raii-locking", patched(
            "src/core/reconfig.h", "namespace hts::core {",
            "namespace hts::core {\n"
            "inline void bad(sync::Mutex& m) { m.lock(); }")),
        # A probe dereference with no guard in sight.
        ("probe-null-guard", patched(
            "src/obs/probe.h", "namespace hts::obs {",
            "namespace hts::obs {\n"
            "inline double bad(Recorder* rec) { return rec->now(); }")),
        # Wall clock inside deterministic code.
        ("determinism", patched(
            "src/core/reconfig.h", "namespace hts::core {",
            "namespace hts::core {\n"
            "inline auto bad_now() { return "
            "std::chrono::steady_clock::now(); }")),
        # Raw clock outside the clock authority.
        ("determinism", patched(
            "src/obs/trace.h", "namespace hts::obs {",
            "namespace hts::obs {\n"
            "inline auto bad_now() { return "
            "std::chrono::system_clock::now(); }")),
        # Ambient randomness anywhere in src/.
        ("determinism", patched(
            "src/core/reconfig.h", "namespace hts::core {",
            "namespace hts::core {\n"
            "inline int bad_rand() { return rand(); }")),
        # A new kind missing from the FrameWriter parity exemplars.
        ("transport-parity", patched(
            "src/core/messages.h", "kFragRepair = 17,",
            "kFragRepair = 17,\n  kUnpinnedKind = 18,")),
        # encode_message_into grows its own switch instead of delegating.
        ("transport-parity", patched(
            "src/core/messages.cpp",
            "void encode_message_into(const net::Payload& msg,",
            "void encode_message_into_detached(const net::Payload& msg,")),
    ]

    failures = 0
    for check_name, tree in seeds:
        caught = [v for v in CHECKS[check_name](tree)]
        if caught:
            print(f"  ok: seeded {check_name} violation caught "
                  f"({caught[0].msg[:60]}...)")
        else:
            print(f"  FAIL: seeded {check_name} violation NOT caught")
            failures += 1
    if failures:
        print(f"self-test: {failures} seed(s) escaped")
        return 1
    print(f"self-test: all {len(seeds)} seeded violations caught")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--repo-root", type=Path,
                    default=Path(__file__).resolve().parent.parent)
    ap.add_argument("--compile-commands", type=Path, default=None,
                    help="compile_commands.json (default: "
                         "<repo-root>/build/compile_commands.json if present)")
    ap.add_argument("--self-test", action="store_true",
                    help="seed violations and verify every check fires")
    args = ap.parse_args(argv)

    repo_root = args.repo_root.resolve()
    if not (repo_root / "src").is_dir():
        print(f"error: {repo_root} has no src/ directory", file=sys.stderr)
        return 2
    cc = args.compile_commands
    if cc is None:
        candidate = repo_root / "build" / "compile_commands.json"
        cc = candidate if candidate.is_file() else None

    files = load_tree(repo_root, cc)
    if args.self_test:
        return self_test(files)

    violations = run_checks(files)
    for v in violations:
        print(v)
    n_files = len(files)
    src = "compile_commands + src walk" if cc else "src walk"
    if violations:
        print(f"hts-lint: {len(violations)} violation(s) in "
              f"{n_files} files ({src})")
        return 1
    print(f"hts-lint: clean — {n_files} files, "
          f"{len(CHECKS)} invariants ({src})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
