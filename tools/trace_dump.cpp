// Pretty-prints a trace CSV (as exported by obs::trace_to_csv) as per-op
// spans. Reads the file named on the command line, or stdin.
//
//   trace_dump run_trace.csv
//   bench_fig5 --quick --metrics-json out.json && trace_dump out.trace.csv
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/export.h"

int main(int argc, char** argv) {
  std::string csv;
  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "trace_dump: cannot open %s\n", argv[1]);
      return 1;
    }
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) csv.append(buf, n);
    std::fclose(f);
  } else {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    csv = ss.str();
  }

  const auto events = hts::obs::parse_trace_csv(csv);
  if (events.empty()) {
    std::fprintf(stderr, "trace_dump: no parseable trace events\n");
    return 1;
  }
  std::fputs(hts::obs::format_spans(events).c_str(), stdout);
  return 0;
}
